"""Implementation of the simulation monitor."""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from math import isfinite, nan
from pathlib import Path
from statistics import mean, median
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.des import Environment
from repro.job import Job
from repro.monitoring.power import PowerMeter
from repro.monitoring.solver_stats import SolverStats


@dataclass
class AllocationSegment:
    """One span of a job's life on a fixed set of nodes."""

    start: float
    end: Optional[float]
    node_indices: Tuple[int, ...]


@dataclass
class SummaryStatistics:
    """Aggregate metrics over one simulation run."""

    makespan: float
    mean_wait: float
    median_wait: float
    max_wait: float
    mean_turnaround: float
    #: 95th-percentile turnaround (response time) across finished jobs —
    #: the tail metric the malleability study tables report next to the
    #: mean (numpy-style linear interpolation between order statistics).
    p95_turnaround: float
    mean_bounded_slowdown: float
    mean_utilization: float
    completed_jobs: int
    killed_jobs: int
    total_reconfigurations: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "makespan": self.makespan,
            "mean_wait": self.mean_wait,
            "median_wait": self.median_wait,
            "max_wait": self.max_wait,
            "mean_turnaround": self.mean_turnaround,
            "p95_turnaround": self.p95_turnaround,
            "mean_bounded_slowdown": self.mean_bounded_slowdown,
            "mean_utilization": self.mean_utilization,
            "completed_jobs": self.completed_jobs,
            "killed_jobs": self.killed_jobs,
            "total_reconfigurations": self.total_reconfigurations,
        }


def _quantile(values: List[float], q: float) -> float:
    """Linear-interpolation quantile (numpy's default method) of ``values``."""
    if not values:
        return nan
    ordered = sorted(values)
    rank = q * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    return ordered[lower] + (ordered[upper] - ordered[lower]) * (rank - lower)


def _json_safe(value: Any) -> Any:
    """Collapse non-finite floats to ``None`` for strict-JSON payloads."""
    if isinstance(value, float) and not isfinite(value):
        return None
    return value


class Monitor:
    """Records simulation events and derives statistics.

    The batch system calls the ``on_*`` hooks; experiments read the series
    and summaries after :meth:`finalize`.
    """

    def __init__(self, env: Environment, num_nodes: int) -> None:
        self.env = env
        self.num_nodes = num_nodes
        #: (time, allocated node count) step function, one point per change.
        self.allocation_series: List[Tuple[float, int]] = [(0.0, 0)]
        #: (time, queued job count) step function.
        self.queue_series: List[Tuple[float, int]] = [(0.0, 0)]
        #: Chronological event log: (time, kind, job id, detail).
        self.events: List[Tuple[float, str, int, str]] = []
        #: Node fault log: (time, "fail"|"repair", node index).
        self.node_events: List[Tuple[float, str, int]] = []
        self._segments: Dict[int, List[AllocationSegment]] = {}
        self._allocated = 0
        self._queued = 0
        self._jobs: Dict[int, Job] = {}
        self._finalized_at: Optional[float] = None
        #: Fair-share solver counters, attached at the end of a run.
        self.solver: Optional[SolverStats] = None
        #: Compiled-expression engine counters for this run (an
        #: :class:`~repro.expressions.ExpressionStats` delta), attached at
        #: the end of a run.  Deliberately *not* part of ``run_record()``:
        #: the counts differ between the compiled and interpreted modes,
        #: and campaign fingerprints must be mode-independent.
        self.expressions: Optional[Any] = None
        #: Energy meter, attached by :meth:`attach_power` when the
        #: platform declares per-node draw; None keeps every energy field
        #: out of ``run_record()`` so powerless goldens stay byte-stable.
        self.power: Optional[PowerMeter] = None

    # -- hooks ------------------------------------------------------------

    def on_submit(self, job: Job) -> None:
        self._jobs[job.jid] = job
        self._queued += 1
        self._push_queue()
        self._log(job, "submit", "")

    def set_allocated(self, count: int) -> None:
        """Record the current number of allocated (incl. reserved) nodes.

        Called by the batch system after every node-state change; this keeps
        the utilization series truthful even for nodes that are *reserved*
        for a pending expansion but not yet used by the job.
        """
        if count != self._allocated:
            self._allocated = count
            self._push_allocation()

    def on_start(self, job: Job) -> None:
        self._queued -= 1
        self._push_queue()
        self._segments.setdefault(job.jid, []).append(
            AllocationSegment(
                start=self.env.now,
                end=None,
                node_indices=tuple(n.index for n in job.assigned_nodes),
            )
        )
        self._log(job, "start", f"nodes={len(job.assigned_nodes)}")

    def on_reconfigure(self, job: Job, old_count: int, new_count: int) -> None:
        segments = self._segments.setdefault(job.jid, [])
        if segments and segments[-1].end is None:
            segments[-1].end = self.env.now
        segments.append(
            AllocationSegment(
                start=self.env.now,
                end=None,
                node_indices=tuple(n.index for n in job.assigned_nodes),
            )
        )
        self._log(job, "reconfigure", f"{old_count}->{new_count}")

    def on_end(self, job: Job) -> None:
        segments = self._segments.get(job.jid, [])
        if segments and segments[-1].end is None:
            segments[-1].end = self.env.now
        kind = "complete" if job.state.value == "completed" else "kill"
        self._log(job, kind, job.kill_reason or "")

    def on_node_failure(self, node_index: int) -> None:
        """Record a node fault (failure injection)."""
        self.node_events.append((self.env.now, "fail", node_index))

    def on_node_repair(self, node_index: int) -> None:
        """Record a node returning to service."""
        self.node_events.append((self.env.now, "repair", node_index))

    def on_queue_drop(self, job: Job) -> None:
        """A pending job left the queue without starting (killed while queued)."""
        self._queued -= 1
        self._push_queue()
        self._log(job, "kill", job.kill_reason or "")

    def attach_power(self, platform) -> None:
        """Meter the platform's power when it declares node draw.

        Registers a :class:`PowerMeter` as the platform's transition
        listener; a powerless platform leaves :attr:`power` as ``None``
        and the monitor's output byte-identical to pre-power builds.
        """
        if platform.power_enabled:
            self.power = PowerMeter(self.env, platform)

    def finalize(self) -> None:
        """Close the series at the current time (end of simulation)."""
        self._finalized_at = self.env.now
        self.allocation_series.append((self.env.now, self._allocated))
        self.queue_series.append((self.env.now, self._queued))
        if self.power is not None:
            self.power.finalize(self.env.now)

    def attach_solver_stats(self, model: Any) -> None:
        """Snapshot a :class:`~repro.sharing.FairShareModel`'s perf counters.

        Called by :meth:`repro.batch.Simulation.run` so experiments can read
        per-event solve scope, component count/size histogram, and cumulative
        solver time from :attr:`solver` after the run.
        """
        self.solver = SolverStats.from_model(model)

    def attach_expression_stats(self, stats: Any) -> None:
        """Attach this run's compiled-expression counters.

        ``stats`` is the per-run delta of the process-wide
        :data:`repro.expressions.STATS` (evaluations, memo/constant hits),
        computed by :meth:`repro.batch.Simulation.run`.
        """
        self.expressions = stats

    # -- snapshot/restore ------------------------------------------------------

    def capture_state(self) -> dict:
        """Snapshot the recorded series and counters mid-run.

        Jobs are stored as jid references in registration (insertion)
        order; solver/expression stats are absent because they are only
        attached at the very end of a run — capturing mid-run asserts so.
        """
        if self._finalized_at is not None:
            raise RuntimeError("Cannot snapshot a finalized monitor")
        if self.solver is not None or self.expressions is not None:
            raise RuntimeError(
                "Cannot snapshot: end-of-run stats already attached"
            )
        return {
            "allocation_series": [list(p) for p in self.allocation_series],
            "queue_series": [list(p) for p in self.queue_series],
            "events": [list(e) for e in self.events],
            "node_events": [list(e) for e in self.node_events],
            "segments": [
                [
                    jid,
                    [
                        [seg.start, seg.end, list(seg.node_indices)]
                        for seg in segments
                    ],
                ]
                for jid, segments in self._segments.items()
            ],
            "allocated": self._allocated,
            "queued": self._queued,
            "jobs": list(self._jobs),
            "power": self.power.capture_state() if self.power is not None else None,
        }

    def restore_state(self, state: dict, jobs_by_jid: Dict[int, Job]) -> None:
        """Rebuild the monitor's series from a snapshot."""
        self.allocation_series = [tuple(p) for p in state["allocation_series"]]
        self.queue_series = [tuple(p) for p in state["queue_series"]]
        self.events = [tuple(e) for e in state["events"]]
        self.node_events = [tuple(e) for e in state["node_events"]]
        self._segments = {
            jid: [
                AllocationSegment(
                    start=start, end=end, node_indices=tuple(indices)
                )
                for start, end, indices in segments
            ]
            for jid, segments in state["segments"]
        }
        self._allocated = state["allocated"]
        self._queued = state["queued"]
        self._jobs = {jid: jobs_by_jid[jid] for jid in state["jobs"]}
        self._finalized_at = None
        if self.power is not None and state.get("power") is not None:
            self.power.restore_state(state["power"])

    # -- internals ------------------------------------------------------------

    def _push_allocation(self) -> None:
        self.allocation_series.append((self.env.now, self._allocated))

    def _push_queue(self) -> None:
        self.queue_series.append((self.env.now, self._queued))

    def _log(self, job: Job, kind: str, detail: str) -> None:
        self.events.append((self.env.now, kind, job.jid, detail))

    # -- derived quantities ---------------------------------------------------

    @property
    def jobs(self) -> List[Job]:
        return list(self._jobs.values())

    def segments(self, jid: int) -> List[AllocationSegment]:
        """Allocation history of one job (for Gantt charts)."""
        return list(self._segments.get(jid, []))

    def makespan(self) -> float:
        """Last job end time (0 if nothing ran)."""
        ends = [j.end_time for j in self._jobs.values() if j.end_time is not None]
        return max(ends) if ends else 0.0

    def utilization_integral(self, until: Optional[float] = None) -> float:
        """Node-seconds allocated in [0, until] (default: makespan)."""
        horizon = until if until is not None else self.makespan()
        if horizon <= 0:
            return 0.0
        total = 0.0
        series = self.allocation_series
        for (t0, level), (t1, _) in zip(series, series[1:]):
            lo, hi = max(0.0, t0), min(horizon, t1)
            if hi > lo:
                total += level * (hi - lo)
        # Extend the last level to the horizon if the series ends early.
        last_t, last_level = series[-1]
        if last_t < horizon:
            total += last_level * (horizon - last_t)
        return total

    def mean_utilization(self, until: Optional[float] = None) -> float:
        """Average fraction of nodes allocated over [0, horizon]."""
        horizon = until if until is not None else self.makespan()
        if horizon <= 0:
            return 0.0
        return self.utilization_integral(horizon) / (self.num_nodes * horizon)

    def utilization_timeline(self) -> List[Tuple[float, float]]:
        """(time, fraction allocated) step series for plotting (E1)."""
        return [(t, count / self.num_nodes) for t, count in self.allocation_series]

    def job_records(self) -> List[Dict[str, Any]]:
        """One flat record per job, ready for CSV/JSON export."""
        records = []
        for job in sorted(self._jobs.values(), key=lambda j: j.jid):
            records.append(
                {
                    "jid": job.jid,
                    "name": job.name,
                    "type": job.type.value,
                    "state": job.state.value,
                    "submit_time": job.submit_time,
                    "start_time": job.start_time,
                    "end_time": job.end_time,
                    "wait_time": job.wait_time,
                    "runtime": job.runtime,
                    "turnaround": job.turnaround,
                    "bounded_slowdown": job.bounded_slowdown(),
                    "nodes": len(job.assigned_nodes),
                    "reconfigurations": job.reconfigurations_applied,
                    "scheduling_points": job.scheduling_points_seen,
                    "kill_reason": job.kill_reason,
                }
            )
        return records

    def summary(self) -> SummaryStatistics:
        """Aggregate statistics over all finished jobs."""
        finished = [j for j in self._jobs.values() if j.finished]
        completed = [j for j in finished if j.state.value == "completed"]
        killed = [j for j in finished if j.state.value == "killed"]
        waits = [j.wait_time for j in finished if j.wait_time is not None]
        turnarounds = [j.turnaround for j in finished if j.turnaround is not None]
        slowdowns = [
            s for j in finished if (s := j.bounded_slowdown()) is not None
        ]
        return SummaryStatistics(
            makespan=self.makespan(),
            mean_wait=mean(waits) if waits else nan,
            median_wait=median(waits) if waits else nan,
            max_wait=max(waits) if waits else nan,
            mean_turnaround=mean(turnarounds) if turnarounds else nan,
            p95_turnaround=_quantile(turnarounds, 0.95),
            mean_bounded_slowdown=mean(slowdowns) if slowdowns else nan,
            mean_utilization=self.mean_utilization(),
            completed_jobs=len(completed),
            killed_jobs=len(killed),
            total_reconfigurations=sum(
                j.reconfigurations_applied for j in self._jobs.values()
            ),
        )

    def run_record(self) -> Dict[str, Any]:
        """Deterministic, JSON-safe record of this run for campaign reports.

        Contains only quantities that are a pure function of the scenario
        spec — summary statistics, event and solver *counts* — never wall
        clock.  Two runs of the same spec and seed must serialise this
        byte-identically (that invariant is what the campaign result cache
        and the CI regression gate are built on).  Non-finite floats (an
        all-killed workload has ``nan`` waits) become ``None`` so the
        record round-trips through strict JSON.
        """
        summary = {
            key: _json_safe(value) for key, value in self.summary().as_dict().items()
        }
        record: Dict[str, Any] = {
            "summary": summary,
            "processed_events": self.env.processed_events,
            "num_jobs": len(self._jobs),
        }
        if self.power is not None:
            energy = self.power.energy_record()
            record["energy"] = {
                "total_joules": _json_safe(energy["total_joules"]),
                "max_power_watts": _json_safe(energy["max_power_watts"]),
                "corridor_watts": _json_safe(energy["corridor_watts"]),
                "node_joules": [_json_safe(e) for e in energy["node_joules"]],
            }
        if self.solver is not None:
            record["solver"] = {
                "resolves": self.solver.resolves,
                "solve_events": self.solver.solve_events,
                "merges": self.solver.merges,
                "splits": self.solver.splits,
            }
        return record

    def node_busy_seconds(self) -> Dict[int, float]:
        """Seconds each node spent in committed allocations.

        Derived from allocation segments; reservation windows (nodes held
        for a pending expansion) are not attributed to any node here.
        """
        horizon = self.makespan()
        busy: Dict[int, float] = {}
        for segments in self._segments.values():
            for seg in segments:
                end = seg.end if seg.end is not None else horizon
                span = max(0.0, end - seg.start)
                for idx in seg.node_indices:
                    busy[idx] = busy.get(idx, 0.0) + span
        return dict(sorted(busy.items()))

    def node_utilizations(self, until: Optional[float] = None) -> Dict[int, float]:
        """Busy fraction per node over [0, horizon] (imbalance analysis)."""
        horizon = until if until is not None else self.makespan()
        if horizon <= 0:
            return {}
        return {
            idx: seconds / horizon
            for idx, seconds in self.node_busy_seconds().items()
        }

    def summary_by(self, key) -> Dict[str, SummaryStatistics]:
        """Aggregate statistics per group, e.g. ``summary_by(lambda j: j.user)``.

        Utilization fields are machine-wide and repeated in each group.
        """
        groups: Dict[str, List[Job]] = {}
        for job in self._jobs.values():
            label = key(job)
            # Jobs without the attribute (e.g. user=None on synthetic
            # workloads) group under a printable sentinel; a raw None key
            # would make the sorted() below raise TypeError against str.
            groups.setdefault("<none>" if label is None else label, []).append(job)
        out: Dict[str, SummaryStatistics] = {}
        for label, jobs in sorted(groups.items()):
            finished = [j for j in jobs if j.finished]
            waits = [j.wait_time for j in finished if j.wait_time is not None]
            turnarounds = [j.turnaround for j in finished if j.turnaround is not None]
            slowdowns = [
                s for j in finished if (s := j.bounded_slowdown()) is not None
            ]
            out[label] = SummaryStatistics(
                makespan=max(
                    (j.end_time for j in finished if j.end_time is not None),
                    default=0.0,
                ),
                mean_wait=mean(waits) if waits else nan,
                median_wait=median(waits) if waits else nan,
                max_wait=max(waits) if waits else nan,
                mean_turnaround=mean(turnarounds) if turnarounds else nan,
                p95_turnaround=_quantile(turnarounds, 0.95),
                mean_bounded_slowdown=mean(slowdowns) if slowdowns else nan,
                mean_utilization=self.mean_utilization(),
                completed_jobs=sum(
                    1 for j in finished if j.state.value == "completed"
                ),
                killed_jobs=sum(1 for j in finished if j.state.value == "killed"),
                total_reconfigurations=sum(
                    j.reconfigurations_applied for j in jobs
                ),
            )
        return out

    def summary_by_type(self) -> Dict[str, SummaryStatistics]:
        """Per-job-type summaries (rigid/moldable/malleable/evolving)."""
        return self.summary_by(lambda job: job.type.value)

    def summary_by_user(self) -> Dict[str, SummaryStatistics]:
        """Per-user summaries (for fairness studies)."""
        return self.summary_by(lambda job: job.user)

    def summary_by_class(self) -> Dict[str, SummaryStatistics]:
        """Per-job-class summaries (batch vs. on-demand response times)."""
        return self.summary_by(lambda job: job.job_class.value)

    # -- export -----------------------------------------------------------------

    def write_job_csv(self, path: Union[str, Path]) -> None:
        """Write per-job records as CSV."""
        records = self.job_records()
        if not records:
            Path(path).write_text("")
            return
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(records[0]))
            writer.writeheader()
            writer.writerows(records)

    def write_summary_json(self, path: Union[str, Path]) -> None:
        """Write the aggregate summary as JSON."""
        Path(path).write_text(json.dumps(self.summary().as_dict(), indent=2))
