"""Performance counters of the incremental fair-share solver.

The :class:`~repro.sharing.FairShareModel` partitions activities into
connected components and re-solves only the components touched by each
event.  :class:`SolverStats` snapshots the counters that quantify how well
that scoping worked for a run — the supporting data behind the E5
simulator-performance benchmark and the micro-substrate churn benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass
class SolverStats:
    """Snapshot of a :class:`~repro.sharing.FairShareModel`'s counters.

    Attributes
    ----------
    resolves:
        Component rate re-computations performed (one per dirty component
        per solve event).
    solve_events:
        Coalesced dirty-set flushes (at most one per simulated instant that
        perturbed the activity set).
    solved_activities:
        Cumulative activities across all component solves — the total
        "solve scope".  ``solved_activities / resolves`` is the mean number
        of activities a re-solve had to look at; a global (non-partitioned)
        solver pays the full running-set size here every time.
    max_solve_scope:
        Largest single component ever solved.
    solver_time:
        Cumulative wall-clock seconds inside ``solve_max_min``.
    merges / splits:
        Component-graph maintenance events (activity starts joining
        components / removals disconnecting one).
    component_count:
        Live components at snapshot time.
    peak_components:
        Most live components observed at once.
    size_histogram:
        Component size → count, at snapshot time.
    fast_solves / scalar_solves / vector_solves:
        How many component solves took the single-activity fast path, the
        scalar progressive-filling loop, and the vectorized numpy kernel
        respectively (``fast + scalar + vector == resolves``).  These are
        wall-clock-free and deterministic for a fixed ``vectorize`` setting,
        but they *depend* on that setting, so they stay out of
        ``Monitor.run_record()``.
    slot_solves:
        How many of the ``fast_solves`` were served by the struct-of-arrays
        slot engine (see ``set_array_engine_enabled``).  Like the kernel
        dispatch counts, this depends on the engine switch and stays out of
        ``Monitor.run_record()``.
    """

    resolves: int = 0
    solve_events: int = 0
    solved_activities: int = 0
    max_solve_scope: int = 0
    solver_time: float = 0.0
    merges: int = 0
    splits: int = 0
    component_count: int = 0
    peak_components: int = 0
    size_histogram: Dict[int, int] = field(default_factory=dict)
    fast_solves: int = 0
    scalar_solves: int = 0
    vector_solves: int = 0
    slot_solves: int = 0

    @property
    def mean_solve_scope(self) -> float:
        """Average activities per component re-solve (0 when none ran)."""
        return self.solved_activities / self.resolves if self.resolves else 0.0

    @classmethod
    def from_model(cls, model: Any) -> "SolverStats":
        """Snapshot ``model`` (a :class:`~repro.sharing.FairShareModel`)."""
        return cls(
            resolves=model.resolves,
            solve_events=model.solve_events,
            solved_activities=model.solved_activities,
            max_solve_scope=model.max_solve_scope,
            solver_time=model.solver_time,
            merges=model.merges,
            splits=model.splits,
            component_count=model.component_count,
            peak_components=model.peak_components,
            size_histogram=model.component_size_histogram(),
            # getattr: tolerate solver doubles that predate path counters.
            fast_solves=getattr(model, "fast_solves", 0),
            scalar_solves=getattr(model, "scalar_solves", 0),
            vector_solves=getattr(model, "vector_solves", 0),
            slot_solves=getattr(model, "slot_solves", 0),
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "resolves": self.resolves,
            "solve_events": self.solve_events,
            "solved_activities": self.solved_activities,
            "mean_solve_scope": self.mean_solve_scope,
            "max_solve_scope": self.max_solve_scope,
            "solver_time": self.solver_time,
            "merges": self.merges,
            "splits": self.splits,
            "component_count": self.component_count,
            "peak_components": self.peak_components,
            "size_histogram": {str(k): v for k, v in self.size_histogram.items()},
            "fast_solves": self.fast_solves,
            "scalar_solves": self.scalar_solves,
            "vector_solves": self.vector_solves,
            "slot_solves": self.slot_solves,
        }
