"""ASCII Gantt rendering of a simulation's allocation history.

Renders one row per job showing when it held how many nodes; malleable
reconfigurations show as width changes within the row's lifetime.  Useful
for eyeballing scheduler behaviour in terminals and in EXPERIMENTS.md
appendices without a plotting stack.
"""

from __future__ import annotations

from typing import List, Optional

from repro.monitoring.monitor import Monitor

#: Glyphs for increasing allocation sizes (quantized).
_LEVELS = "·▁▂▃▄▅▆▇█"


def render_gantt(
    monitor: Monitor,
    *,
    width: int = 80,
    max_jobs: Optional[int] = None,
    horizon: Optional[float] = None,
) -> str:
    """Render the run as an ASCII Gantt chart.

    Each row is a job; each column a time bucket.  Glyph height encodes the
    job's allocation size relative to the machine ( ``·`` = queued,
    ``▁..█`` = share of nodes held).  Returns a printable multi-line string.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    jobs = sorted(monitor.jobs, key=lambda j: j.jid)
    if max_jobs is not None:
        jobs = jobs[:max_jobs]
    end = horizon if horizon is not None else monitor.makespan()
    if end <= 0 or not jobs:
        return "(nothing ran)"

    name_width = max(len(j.name) for j in jobs)
    lines: List[str] = []
    header = f"{'job':<{name_width}} |{'time →':<{width}}|"
    lines.append(header)
    for job in jobs:
        segments = monitor.segments(job.jid)
        row = []
        for column in range(width):
            t = end * (column + 0.5) / width
            glyph = " "
            if job.submit_time <= t and (job.end_time is None or t < job.end_time):
                glyph = "·"  # queued
                for seg in segments:
                    seg_end = seg.end if seg.end is not None else end
                    if seg.start <= t < seg_end:
                        share = len(seg.node_indices) / monitor.num_nodes
                        level = max(1, min(8, round(share * 8)))
                        glyph = _LEVELS[level]
                        break
            row.append(glyph)
        marker = {"completed": " ", "killed": " ✗", "running": " …"}.get(
            job.state.value, ""
        )
        lines.append(f"{job.name:<{name_width}} |{''.join(row)}|{marker}")
    # The ruler spends 1 column on "0" and 7 on the end label; clamp the
    # dash run so narrow charts (width < 8) don't rely on ``'-' * negative``.
    lines.append(
        f"{'':<{name_width}}  0{'-' * max(0, width - 8)}{end:>7.0f}s"
    )
    return "\n".join(lines)
