"""Monitoring: time series, per-job records, and summary statistics.

The :class:`Monitor` observes the batch system and records everything the
experiment harness needs:

* step-function time series of allocated nodes and queue length,
* per-job records (submit/start/end, waits, turnaround, slowdown,
  reconfiguration counts),
* per-job allocation segments for Gantt charts,
* aggregate summaries (makespan, average utilization, mean/median waits).

Everything exports to plain dicts / CSV so the benchmark harness can print
paper-style tables without extra dependencies.
"""

from repro.monitoring.monitor import AllocationSegment, Monitor, SummaryStatistics
from repro.monitoring.gantt import render_gantt
from repro.monitoring.power import PowerMeter
from repro.monitoring.solver_stats import SolverStats

__all__ = [
    "AllocationSegment",
    "Monitor",
    "PowerMeter",
    "SolverStats",
    "SummaryStatistics",
    "render_gantt",
]
