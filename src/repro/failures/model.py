"""Failure descriptions and the synthetic failure-trace generator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


class FailureError(Exception):
    """Raised for invalid failure descriptions."""


@dataclass(frozen=True)
class Failure:
    """One node fault.

    Attributes
    ----------
    time:
        Simulated instant the node fails.
    node_index:
        Which node.
    downtime:
        Repair duration in seconds; the node returns at ``time + downtime``.
    """

    time: float
    node_index: int
    downtime: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise FailureError(f"Failure time must be >= 0, got {self.time}")
        if self.node_index < 0:
            raise FailureError(f"node_index must be >= 0, got {self.node_index}")
        if self.downtime <= 0:
            raise FailureError(f"downtime must be > 0, got {self.downtime}")


def generate_failures(
    *,
    num_nodes: int,
    horizon: float,
    mtbf: float,
    mean_repair: float,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> List[Failure]:
    """Poisson failures per node over ``[0, horizon]``.

    Each node fails independently with exponential inter-failure times of
    mean ``mtbf``; repairs are exponential with mean ``mean_repair``.
    Overlapping faults on one node are merged by skipping faults that occur
    while the node is still down.  All draws come from a single injected
    generator — ``rng`` when given (callers deriving several streams from
    one master seed), else ``np.random.default_rng(seed)``.
    """
    if num_nodes < 1:
        raise FailureError("num_nodes must be >= 1")
    if horizon <= 0:
        raise FailureError("horizon must be > 0")
    if mtbf <= 0 or mean_repair <= 0:
        raise FailureError("mtbf and mean_repair must be > 0")

    if rng is None:
        rng = np.random.default_rng(seed)
    failures: List[Failure] = []
    for node in range(num_nodes):
        t = float(rng.exponential(mtbf))
        while t < horizon:
            downtime = max(1e-6, float(rng.exponential(mean_repair)))
            failures.append(Failure(time=t, node_index=node, downtime=downtime))
            t += downtime + float(rng.exponential(mtbf))
    failures.sort(key=lambda f: (f.time, f.node_index))
    return failures
