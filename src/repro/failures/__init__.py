"""Node-failure injection.

Batch systems live with hardware faults; simulating them answers questions
like "how much does malleability help when nodes disappear?".  This
package provides:

* :class:`Failure` — one fault: which node, when, and how long the repair
  takes.
* :func:`generate_failures` — Poisson per-node faults from an MTBF and a
  mean repair time, fully seeded.
* Integration via ``Simulation(..., failures=[...])``: at the fault time
  the node is marked failed (schedulers stop seeing it as free) and any
  job running on it is killed with reason ``"node_failure"``; after the
  repair time the node returns and the scheduler is re-invoked.
"""

from repro.failures.model import Failure, FailureError, generate_failures

__all__ = ["Failure", "FailureError", "generate_failures"]
