"""Fair-sharing activity engine (the SimGrid-model substitute).

SimGrid — the substrate of the original ElastiSim — advances *activities*
(computations, network flows, I/O transfers) whose progress rates are the
solution of a max-min fairness problem over shared resources (CPUs, links,
file-system servers).  This package reimplements that model:

* :class:`SharedResource` — a capacity in work-units/second (flops/s for
  compute, bytes/s for links and PFS servers).
* :class:`Activity` — an amount of remaining work drawing on one or more
  resources, optionally rate-bounded and weighted.
* :class:`FairShareModel` — solves weighted max-min fair rate allocation
  (progressive filling) each time the activity set changes and drives
  activity completion events on a DES :class:`~repro.des.Environment`.

The solver guarantees two invariants that the property-based tests pin down:

1. **No over-subscription**: for every resource, the summed consumption of
   its activities never exceeds its capacity (within float tolerance).
2. **Work conservation / max-min optimality**: an activity's rate can only
   be increased by decreasing the rate of another activity that already has
   a lower or equal rate (classic bottleneck-fairness characterization).
"""

from repro.sharing.model import (
    Activity,
    ActivityCancelled,
    FairShareModel,
    SharedResource,
    array_engine_enabled,
    set_array_engine_enabled,
    solve_max_min,
)

__all__ = [
    "Activity",
    "ActivityCancelled",
    "FairShareModel",
    "SharedResource",
    "array_engine_enabled",
    "set_array_engine_enabled",
    "solve_max_min",
]
