"""Max-min fair sharing of resources among concurrent activities.

The model is the classic fluid one used by SimGrid's L07/network models:
every activity ``a`` progresses at a rate ``r_a`` subject to

* capacity: for each resource ``R``:  ``sum_a u_{a,R} * r_a <= C_R``
* bound:    ``r_a <= bound_a`` (e.g. a single node cannot compute faster
  than its flops rate, a flow cannot exceed its NIC bandwidth)

with the *weighted max-min fair* solution computed by progressive filling:
all unfrozen activities' rates grow proportionally to their weights until a
resource saturates (or a bound is hit); the involved activities freeze; the
process repeats.  Completion times then follow from ``remaining / r_a``, and
the model re-solves whenever the activity set changes — exactly SimGrid's
"lazy update on actions" behaviour, which keeps simulated time faithful to
the fluid model while doing work only at discrete events.
"""

from __future__ import annotations

from itertools import count
from math import inf
from typing import Any, Dict, Iterable, Optional

from repro.des.environment import Environment
from repro.des.events import Event, URGENT


#: Relative slack used when deciding that remaining work hit zero.
_FINISH_TOL = 1e-9


class ActivityCancelled(Exception):
    """Failure value of ``activity.done`` when an activity is cancelled."""

    def __init__(self, activity: "Activity") -> None:
        super().__init__(f"{activity!r} was cancelled")
        self.activity = activity


class SharedResource:
    """A resource with a fixed service capacity shared by activities.

    Parameters
    ----------
    name:
        Diagnostic label (e.g. ``"node03.cpu"`` or ``"pfs.write"``).
    capacity:
        Service rate in work-units/second.  Must be positive and finite
        unless the resource is declared unlimited (``capacity=inf``).
    """

    __slots__ = ("name", "capacity")

    def __init__(self, name: str, capacity: float) -> None:
        if capacity <= 0:
            raise ValueError(f"Resource {name!r}: capacity must be > 0, got {capacity}")
        self.name = name
        self.capacity = float(capacity)

    def __repr__(self) -> str:
        return f"<SharedResource {self.name} cap={self.capacity:g}>"


class Activity:
    """An amount of work progressing on a set of shared resources.

    Parameters
    ----------
    work:
        Total work (flops, bytes). Zero-work activities complete immediately
        upon execution.
    usages:
        Mapping of resource → usage factor.  An activity running at rate
        ``r`` consumes ``factor * r`` of each resource's capacity.  A plain
        flow over two links uses factor 1.0 on both; a compute task that
        stresses a node at half intensity uses factor 0.5.
    weight:
        Weight for the max-min fair share (default 1.0).
    bound:
        Hard cap on the activity's own rate (default unbounded).
    payload:
        Arbitrary user data carried to completion (used by the engine to
        map activities back to tasks).
    """

    __slots__ = (
        "work",
        "remaining",
        "usages",
        "weight",
        "bound",
        "payload",
        "rate",
        "done",
        "started_at",
        "finished_at",
        "_model",
        "_seq",
    )

    _counter = count()

    def __init__(
        self,
        work: float,
        usages: Dict[SharedResource, float],
        *,
        weight: float = 1.0,
        bound: float = inf,
        payload: Any = None,
    ) -> None:
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work}")
        if weight <= 0:
            raise ValueError(f"weight must be > 0, got {weight}")
        if bound <= 0:
            raise ValueError(f"bound must be > 0, got {bound}")
        for res, factor in usages.items():
            if factor <= 0:
                raise ValueError(
                    f"usage factor on {res.name!r} must be > 0, got {factor}"
                )
        self.work = float(work)
        self.remaining = float(work)
        self.usages = dict(usages)
        self.weight = float(weight)
        self.bound = float(bound)
        self.payload = payload
        #: Current progress rate, set by the solver.
        self.rate: float = 0.0
        #: Completion event; assigned when the activity is executed.
        self.done: Optional[Event] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._model: Optional["FairShareModel"] = None
        #: Creation-order id; fixes processing order for determinism.
        self._seq: int = next(Activity._counter)

    def __repr__(self) -> str:
        return (
            f"<Activity work={self.work:g} remaining={self.remaining:g} "
            f"rate={self.rate:g} payload={self.payload!r}>"
        )

    @property
    def running(self) -> bool:
        """True while the activity is registered with a model."""
        return self._model is not None


def solve_max_min(activities: Iterable[Activity]) -> None:
    """Assign weighted max-min fair rates to ``activities`` in place.

    Implements progressive filling.  Activities with no resource usages are
    only limited by their ``bound`` (infinite bound → infinite rate, which
    the model treats as instantaneous completion of their remaining work).
    """
    # Deterministic processing order (creation order): float accumulation
    # and tie-breaking must not depend on set iteration order, or identical
    # runs would diverge across processes.
    acts = sorted(activities, key=lambda a: a._seq)
    for act in acts:
        act.rate = 0.0

    # Unconstrained activities progress at their bound.  Ordered dicts
    # stand in for sets to keep iteration deterministic under deletion.
    unfrozen: Dict[Activity, None] = {}
    for act in acts:
        if act.usages:
            unfrozen[act] = None
        else:
            act.rate = act.bound

    if not unfrozen:
        return

    # Residual capacity, per-resource weighted demand, and user index —
    # demand is maintained incrementally as activities freeze, which keeps
    # the whole solve at O(edges + iterations x resources) instead of
    # re-summing every resource's users each round.
    residual: Dict[SharedResource, float] = {}
    demand: Dict[SharedResource, float] = {}
    users: Dict[SharedResource, Dict[Activity, None]] = {}
    for act in unfrozen:
        for res, factor in act.usages.items():
            if res not in residual:
                residual[res] = res.capacity
                demand[res] = 0.0
                users[res] = {}
            demand[res] += factor * act.weight
            users[res][act] = None

    bounded: Dict[Activity, None] = {
        act: None for act in unfrozen if act.bound < inf
    }

    while unfrozen:
        # The next rate increment `theta` is limited by the tightest
        # resource or by the closest per-activity bound; remember the
        # limiter so it is frozen even if float drift leaves it a hair
        # short of the saturation tolerance.
        theta = inf
        limiting_res: SharedResource | None = None
        limiting_act: Activity | None = None
        for res, cap in residual.items():
            if not users[res]:
                continue  # stale float residue in demand must not gate theta
            d = demand[res]
            if d > 1e-15:
                ratio = cap / d
                if ratio < theta:
                    theta = ratio
                    limiting_res = res
        for act in bounded:
            ratio = (act.bound - act.rate) / act.weight
            if ratio < theta:
                theta = ratio
                limiting_res = None
                limiting_act = act

        if theta == inf:
            # All remaining activities are unbounded and use only resources
            # without other users (cannot happen: they'd saturate); guard.
            for act in unfrozen:
                act.rate = inf
            break

        if theta > 0:
            for act in unfrozen:
                act.rate += theta * act.weight
            for res in residual:
                residual[res] -= theta * demand[res]

        # Freeze activities on saturated resources or at their bound.
        frozen: Dict[Activity, None] = {}
        for res, cap in residual.items():
            if users[res] and cap <= max(1e-12, 1e-12 * res.capacity):
                residual[res] = 0.0
                frozen.update(users[res])
        for act in bounded:
            if act.rate >= act.bound * (1 - 1e-12):
                act.rate = act.bound
                frozen[act] = None
        # Guarantee progress: the entity that determined theta is saturated
        # by construction, even when float drift hides it from the checks.
        if limiting_res is not None and users[limiting_res]:
            frozen.update(users[limiting_res])
            residual[limiting_res] = 0.0
        if limiting_act is not None:
            limiting_act.rate = limiting_act.bound
            frozen[limiting_act] = None

        if not frozen:  # pragma: no cover - defensive; cannot happen now
            frozen = dict(unfrozen)

        for act in frozen:
            if act not in unfrozen:
                continue
            for res, factor in act.usages.items():
                del users[res][act]
                demand[res] -= factor * act.weight
                if not users[res]:
                    demand[res] = 0.0  # drop cancellation residue
            del unfrozen[act]
            bounded.pop(act, None)


class FairShareModel:
    """Drives activities to completion on a DES environment.

    The model keeps the set of running activities, recomputes fair rates
    whenever the set changes, and schedules a single wake-up event at the
    earliest projected completion.  Event-count bookkeeping (`resolves`)
    feeds the E5 simulator-performance benchmark.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._activities: set[Activity] = set()
        self._last_update: float = env.now
        self._wake_version: int = 0
        self._resolve_scheduled: bool = False
        #: Number of rate re-computations performed (diagnostics).
        self.resolves: int = 0

    # -- public API -------------------------------------------------------

    @property
    def activities(self) -> frozenset[Activity]:
        """Snapshot of the running activities."""
        return frozenset(self._activities)

    def execute(self, activity: Activity) -> Activity:
        """Start ``activity``; its ``done`` event fires at completion."""
        if activity._model is not None:
            raise ValueError(f"{activity!r} is already running")
        if activity.done is not None:
            raise ValueError(f"{activity!r} was already executed once")
        activity.done = Event(self.env)
        activity.started_at = self.env.now
        if activity.remaining <= 0:
            activity.finished_at = self.env.now
            activity.done.succeed(activity)
            return activity
        for res in activity.usages:
            if res.capacity <= 0:  # defensive; constructor forbids it
                raise ValueError(f"Cannot execute on zero-capacity {res!r}")
        activity._model = self
        self._update_progress()
        self._activities.add(activity)
        self._request_resolve()
        return activity

    def cancel(self, activity: Activity) -> None:
        """Abort a running activity; fails its ``done`` with a defused error.

        Cancelling an activity that already finished (or was never started)
        is a no-op, which simplifies engine teardown paths.
        """
        if activity._model is not self:
            return
        self._update_progress()
        self._activities.discard(activity)
        activity._model = None
        activity.rate = 0.0
        if activity.done is not None and not activity.done.triggered:
            exc = ActivityCancelled(activity)
            activity.done.fail(exc)
            activity.done.defuse()
        self._request_resolve()

    # -- internals ----------------------------------------------------------

    def _update_progress(self) -> None:
        """Integrate remaining work since the last solver step."""
        dt = self.env.now - self._last_update
        if dt > 0:
            for act in self._activities:
                if act.rate == inf:
                    act.remaining = 0.0
                elif act.rate > 0:
                    act.remaining = max(0.0, act.remaining - act.rate * dt)
        self._last_update = self.env.now

    def _request_resolve(self) -> None:
        """Coalesce same-instant set changes into a single re-solve.

        Starting a 64-node compute task adds 64 activities at the same
        timestamp; solving once per addition would be O(n^2).  Instead an
        URGENT zero-delay event triggers one solve after all mutations of
        the current instant are in.
        """
        self._wake_version += 1  # invalidate in-flight wake-ups immediately
        if self._resolve_scheduled:
            return
        self._resolve_scheduled = True
        resolve = Event(self.env)
        resolve._ok = True
        resolve._value = None
        resolve.callbacks.append(lambda _e: self._do_resolve())
        self.env.schedule(resolve, priority=URGENT)

    def _do_resolve(self) -> None:
        self._resolve_scheduled = False
        self._reschedule()

    def _reschedule(self) -> None:
        """Re-solve rates and arm the wake-up at the next completion."""
        self._wake_version += 1
        if not self._activities:
            return
        solve_max_min(self._activities)
        self.resolves += 1

        horizon = inf
        for act in self._activities:
            if act.rate == inf or act.remaining <= _FINISH_TOL * (1 + act.work):
                horizon = 0.0
                break
            if act.rate > 0:
                horizon = min(horizon, act.remaining / act.rate)
        if horizon is inf:
            # Nothing can progress (all rates zero) — should not happen with
            # positive capacities, but avoid hanging silently.
            raise RuntimeError("FairShareModel deadlock: no activity can progress")

        version = self._wake_version
        wake = Event(self.env)
        wake._ok = True
        wake._value = None
        wake.callbacks.append(lambda _e: self._on_wake(version))
        self.env.schedule(wake, priority=URGENT, delay=horizon)

    def _on_wake(self, version: int) -> None:
        if version != self._wake_version:
            return  # stale wake-up; the activity set changed since
        self._update_progress()
        finished = sorted(
            (
                act
                for act in self._activities
                if act.rate == inf or act.remaining <= _FINISH_TOL * (1 + act.work)
            ),
            key=lambda a: a._seq,  # deterministic completion order
        )
        for act in finished:
            self._activities.discard(act)
            act._model = None
            act.remaining = 0.0
            act.rate = 0.0
            act.finished_at = self.env.now
            act.done.succeed(act)
        self._reschedule()
