"""Max-min fair sharing of resources among concurrent activities.

The model is the classic fluid one used by SimGrid's L07/network models:
every activity ``a`` progresses at a rate ``r_a`` subject to

* capacity: for each resource ``R``:  ``sum_a u_{a,R} * r_a <= C_R``
* bound:    ``r_a <= bound_a`` (e.g. a single node cannot compute faster
  than its flops rate, a flow cannot exceed its NIC bandwidth)

with the *weighted max-min fair* solution computed by progressive filling:
all unfrozen activities' rates grow proportionally to their weights until a
resource saturates (or a bound is hit); the involved activities freeze; the
process repeats.  Completion times then follow from ``remaining / r_a``.

Because max-min fairness decomposes exactly over the *connected components*
of the bipartite activity↔resource graph (two activities can only influence
each other's rates through a chain of shared resources), the model keeps
that partition incrementally and re-solves only the components actually
touched by a start/cancel/finish — SimGrid's lazy partial invalidation.
Jobs on disjoint nodes stop paying for each other at every event; progress
(``remaining -= rate * dt``) is likewise integrated lazily, only when a
component is perturbed or completes, which is exact because rates are
constant between the events that touch a component.
"""

from __future__ import annotations

import os
from heapq import heapify, heappop, heappush
from itertools import count
from math import inf
from time import perf_counter
from typing import Any, Dict, Iterable, List, Optional

from repro.des.environment import Environment
from repro.des.events import Event, PooledEvent, URGENT

try:  # numpy backs the vectorized solver; scalar path needs nothing
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None


#: Relative slack used when deciding that remaining work hit zero.
_FINISH_TOL = 1e-9

#: Component size from which the auto dispatch (``vectorize=None``) picks
#: the numpy kernel; below it, array setup costs more than the dict scans.
VECTOR_CROSSOVER = 32

#: Dirty-slot batch size from which the array engine's slot solve switches
#: to the numpy kernel; below it the scalar loop is cheaper (same floats
#: either way, so the crossover only affects speed).
SLOT_VECTOR_CROSSOVER = 32

#: Process-wide default for ``solve_max_min``'s auto dispatch: ``True``
#: forces the vectorized kernel, ``False`` forces the scalar loop, ``None``
#: selects by component size.  Tests flip this for whole-run A/B checks.
DEFAULT_VECTORIZE: Optional[bool] = None

#: Process-wide default for the struct-of-arrays "slot" engine (see
#: :class:`_SlotTable`).  On by default; ``ELASTISIM_ARRAY_ENGINE=0`` in
#: the environment or :func:`set_array_engine_enabled` turn it off for
#: whole-run A/B comparisons.  Both engines are specified to produce
#: byte-identical ``run_record()`` payloads (the fuzzer's differential
#: oracle and ``tests/batch/test_mode_equivalence.py`` enforce it).
_ARRAY_ENGINE: bool = os.environ.get("ELASTISIM_ARRAY_ENGINE", "1") != "0"


def set_array_engine_enabled(enabled: bool) -> None:
    """Process-wide switch for the array (struct-of-arrays) engine core.

    Mirrors ``repro.expressions.set_compiled_enabled``: a pure performance
    A/B toggle that models read at construction time.  Simulation results
    are identical either way; only speed and memory layout change.
    """
    global _ARRAY_ENGINE
    _ARRAY_ENGINE = bool(enabled)


def array_engine_enabled() -> bool:
    """Current process-wide default of the array-engine switch."""
    return _ARRAY_ENGINE


class ActivityCancelled(Exception):
    """Failure value of ``activity.done`` when an activity is cancelled."""

    def __init__(self, activity: "Activity") -> None:
        super().__init__(f"{activity!r} was cancelled")
        self.activity = activity


class SharedResource:
    """A resource with a fixed service capacity shared by activities.

    Parameters
    ----------
    name:
        Diagnostic label (e.g. ``"node03.cpu"`` or ``"pfs.write"``).
    capacity:
        Service rate in work-units/second.  Must be positive and finite
        unless the resource is declared unlimited (``capacity=inf``).
    """

    __slots__ = ("name", "capacity")

    def __init__(self, name: str, capacity: float) -> None:
        if capacity <= 0:
            raise ValueError(f"Resource {name!r}: capacity must be > 0, got {capacity}")
        self.name = name
        self.capacity = float(capacity)

    def __repr__(self) -> str:
        return f"<SharedResource {self.name} cap={self.capacity:g}>"


class Activity:
    """An amount of work progressing on a set of shared resources.

    Parameters
    ----------
    work:
        Total work (flops, bytes). Zero-work activities complete immediately
        upon execution.
    usages:
        Mapping of resource → usage factor.  An activity running at rate
        ``r`` consumes ``factor * r`` of each resource's capacity.  A plain
        flow over two links uses factor 1.0 on both; a compute task that
        stresses a node at half intensity uses factor 0.5.
    weight:
        Weight for the max-min fair share (default 1.0).
    bound:
        Hard cap on the activity's own rate (default unbounded).
    payload:
        Arbitrary user data carried to completion (used by the engine to
        map activities back to tasks).
    """

    __slots__ = (
        "work",
        "remaining",
        "usages",
        "weight",
        "bound",
        "payload",
        "rate",
        "done",
        "started_at",
        "finished_at",
        "_model",
        "_seq",
    )

    _counter = count()

    def __init__(
        self,
        work: float,
        usages: Dict[SharedResource, float],
        *,
        weight: float = 1.0,
        bound: float = inf,
        payload: Any = None,
    ) -> None:
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work}")
        if weight <= 0:
            raise ValueError(f"weight must be > 0, got {weight}")
        if bound <= 0:
            raise ValueError(f"bound must be > 0, got {bound}")
        for res, factor in usages.items():
            if factor <= 0:
                raise ValueError(
                    f"usage factor on {res.name!r} must be > 0, got {factor}"
                )
        self.work = float(work)
        self.remaining = float(work)
        self.usages = dict(usages)
        self.weight = float(weight)
        self.bound = float(bound)
        self.payload = payload
        #: Current progress rate, set by the solver.
        self.rate: float = 0.0
        #: Completion event; assigned when the activity is executed.
        self.done: Optional[Event] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._model: Optional["FairShareModel"] = None
        #: Creation-order id; fixes processing order for determinism.
        self._seq: int = next(Activity._counter)

    @classmethod
    def unchecked(
        cls,
        work: float,
        usages: Dict[SharedResource, float],
        *,
        weight: float = 1.0,
        bound: float = inf,
        payload: Any = None,
    ) -> "Activity":
        """Construct without validation or a usage-dict copy (hot paths).

        The engine's task fan-out creates one activity per node per task;
        the constructor's validation loops and defensive dict copy are
        measurable there.  Callers must guarantee what ``__init__`` checks
        — ``work >= 0``, positive weight/bound/usage factors — and must
        hand over exclusive ownership of ``usages``.
        """
        self = cls.__new__(cls)
        self.work = work = float(work)
        self.remaining = work
        self.usages = usages
        self.weight = weight
        self.bound = bound
        self.payload = payload
        self.rate = 0.0
        self.done = None
        self.started_at = None
        self.finished_at = None
        self._model = None
        self._seq = next(cls._counter)
        return self

    def __repr__(self) -> str:
        return (
            f"<Activity work={self.work:g} remaining={self.remaining:g} "
            f"rate={self.rate:g} payload={self.payload!r}>"
        )

    @property
    def running(self) -> bool:
        """True while the activity is registered with a model."""
        return self._model is not None


def solve_max_min(
    activities: Iterable[Activity], *, vectorize: Optional[bool] = None
) -> str:
    """Assign weighted max-min fair rates to ``activities`` in place.

    Implements progressive filling.  Activities with no resource usages are
    only limited by their ``bound`` (infinite bound → infinite rate, which
    the model treats as instantaneous completion of their remaining work).

    ``vectorize`` selects the kernel: ``False`` runs the reference scalar
    loop, ``True`` the numpy kernel, ``None`` (default) defers to
    :data:`DEFAULT_VECTORIZE` and otherwise auto-dispatches by component
    size (:data:`VECTOR_CROSSOVER`).  Both kernels — and the
    single-activity fast path — are *bit-identical*: same float operations
    in the same order, same freeze order, same tie-breaking (asserted by
    ``tests/sharing/test_vectorized_solver.py``), so campaign fingerprints
    do not depend on the dispatch.  Returns the path taken (``"fast"``,
    ``"scalar"``, or ``"vector"``) for the model's perf counters.
    """
    # Deterministic processing order (creation order): float accumulation
    # and tie-breaking must not depend on set iteration order, or identical
    # runs would diverge across processes.
    acts = list(activities)
    if not acts:
        return "scalar"
    if len(acts) == 1:  # dominant case: skip the sort machinery entirely
        _solve_single(acts[0])
        return "fast"
    acts.sort(key=lambda a: a._seq)
    mode = vectorize if vectorize is not None else DEFAULT_VECTORIZE
    if _np is not None and (
        mode is True or (mode is None and len(acts) >= VECTOR_CROSSOVER)
    ):
        _solve_vector(acts)
        return "vector"
    _solve_scalar(acts)
    return "scalar"


def _solve_single(act: Activity) -> None:
    """One-activity progressive filling, unrolled.

    The dominant case in practice (activities on disjoint nodes form
    singleton components).  Replays exactly the float operations the scalar
    loop performs for one activity: one theta round, bound snap included.
    """
    act.rate = 0.0
    usages = act.usages
    if not usages:
        act.rate = act.bound
        return
    w = act.weight
    theta = inf
    for res, factor in usages.items():
        d = factor * w
        if d > 1e-15:
            ratio = res.capacity / d
            if ratio < theta:
                theta = ratio
    bound = act.bound
    limited_by_bound = False
    if bound < inf:
        ratio = (bound - 0.0) / w
        if ratio < theta:
            theta = ratio
            limited_by_bound = True
    if theta == inf:
        act.rate = inf
        return
    rate = 0.0
    if theta > 0:
        rate = 0.0 + theta * w
    if bound < inf and rate >= bound * (1 - 1e-12):
        rate = bound
    if limited_by_bound:
        rate = bound
    act.rate = rate


def _solve_scalar(acts: List[Activity]) -> None:
    """Reference progressive-filling loop over dicts (creation-ordered)."""
    for act in acts:
        act.rate = 0.0

    # Unconstrained activities progress at their bound.  Ordered dicts
    # stand in for sets to keep iteration deterministic under deletion.
    unfrozen: Dict[Activity, None] = {}
    for act in acts:
        if act.usages:
            unfrozen[act] = None
        else:
            act.rate = act.bound

    if not unfrozen:
        return

    # Residual capacity, per-resource weighted demand, and user index —
    # demand is maintained incrementally as activities freeze, which keeps
    # the whole solve at O(edges + iterations x resources) instead of
    # re-summing every resource's users each round.
    residual: Dict[SharedResource, float] = {}
    demand: Dict[SharedResource, float] = {}
    users: Dict[SharedResource, Dict[Activity, None]] = {}
    for act in unfrozen:
        for res, factor in act.usages.items():
            if res not in residual:
                residual[res] = res.capacity
                demand[res] = 0.0
                users[res] = {}
            demand[res] += factor * act.weight
            users[res][act] = None

    bounded: Dict[Activity, None] = {
        act: None for act in unfrozen if act.bound < inf
    }

    while unfrozen:
        # The next rate increment `theta` is limited by the tightest
        # resource or by the closest per-activity bound; remember the
        # limiter so it is frozen even if float drift leaves it a hair
        # short of the saturation tolerance.
        theta = inf
        limiting_res: SharedResource | None = None
        limiting_act: Activity | None = None
        for res, cap in residual.items():
            if not users[res]:
                continue  # stale float residue in demand must not gate theta
            d = demand[res]
            if d > 1e-15:
                ratio = cap / d
                if ratio < theta:
                    theta = ratio
                    limiting_res = res
        for act in bounded:
            ratio = (act.bound - act.rate) / act.weight
            if ratio < theta:
                theta = ratio
                limiting_res = None
                limiting_act = act

        if theta == inf:
            # All remaining activities are unbounded and use only resources
            # without other users (cannot happen: they'd saturate); guard.
            for act in unfrozen:
                act.rate = inf
            break

        if theta > 0:
            for act in unfrozen:
                act.rate += theta * act.weight
            for res in residual:
                residual[res] -= theta * demand[res]

        # Freeze activities on saturated resources or at their bound.
        frozen: Dict[Activity, None] = {}
        for res, cap in residual.items():
            if users[res] and cap <= max(1e-12, 1e-12 * res.capacity):
                residual[res] = 0.0
                frozen.update(users[res])
        for act in bounded:
            if act.rate >= act.bound * (1 - 1e-12):
                act.rate = act.bound
                frozen[act] = None
        # Guarantee progress: the entity that determined theta is saturated
        # by construction, even when float drift hides it from the checks.
        if limiting_res is not None and users[limiting_res]:
            frozen.update(users[limiting_res])
            residual[limiting_res] = 0.0
        if limiting_act is not None:
            limiting_act.rate = limiting_act.bound
            frozen[limiting_act] = None

        if not frozen:  # pragma: no cover - defensive; cannot happen now
            frozen = dict(unfrozen)

        for act in frozen:
            if act not in unfrozen:
                continue
            for res, factor in act.usages.items():
                del users[res][act]
                demand[res] -= factor * act.weight
                if not users[res]:
                    demand[res] = 0.0  # drop cancellation residue
            del unfrozen[act]
            bounded.pop(act, None)


def _solve_vector(acts: List[Activity]) -> None:
    """Numpy progressive filling, bit-identical to :func:`_solve_scalar`.

    Index ``i`` stands in for the activity at position ``i`` of the
    creation-ordered ``acts`` list, and resources are numbered in the same
    first-encounter order the scalar loop builds its dicts in.  Every float
    operation is a float64 elementwise op matching a scalar Python-float op
    one-to-one (IEEE-identical), ``np.argmin`` returns the first occurrence
    of the minimum — the scalar loop's strict-``<`` first-win tie-break —
    and freezes are processed in the same insertion order.  The scalar
    demand *accumulation* (first-encounter order) and per-freeze demand
    decrements stay plain Python floats so rounding matches exactly.
    """
    np = _np
    n = len(acts)
    rates = np.zeros(n)
    weights = np.empty(n)
    bounds = np.empty(n)
    unfrozen = np.zeros(n, dtype=bool)
    n_unfrozen = 0
    for i, act in enumerate(acts):
        act.rate = 0.0
        weights[i] = act.weight
        bounds[i] = act.bound
        if act.usages:
            unfrozen[i] = True
            n_unfrozen += 1
        else:
            rates[i] = act.bound  # unconstrained: progress at the bound

    if n_unfrozen:
        # Resource tables, in the scalar loop's first-encounter order.
        res_index: Dict[SharedResource, int] = {}
        caps: List[float] = []
        demand_py: List[float] = []
        users: List[Dict[int, None]] = []
        act_edges: List[Optional[List[tuple]]] = [None] * n
        for i, act in enumerate(acts):
            if not unfrozen[i]:
                continue
            w = act.weight
            edges = []
            for res, factor in act.usages.items():
                j = res_index.get(res)
                if j is None:
                    j = len(caps)
                    res_index[res] = j
                    caps.append(res.capacity)
                    demand_py.append(0.0)
                    users.append({})
                demand_py[j] += factor * w
                users[j][i] = None
                edges.append((j, factor))
            act_edges[i] = edges
        m = len(caps)
        caps_arr = np.array(caps)
        residual = caps_arr.copy()
        demand = np.array(demand_py)
        user_count = np.fromiter(
            (len(u) for u in users), dtype=np.int64, count=m
        )
        sat_tol = np.maximum(1e-12, 1e-12 * caps_arr)
        bounded: Dict[int, None] = {
            i: None for i in range(n) if unfrozen[i] and acts[i].bound < inf
        }
        ratios = np.empty(m)

        while n_unfrozen:
            theta = inf
            limiting_res = -1
            limiting_act = -1
            active = (user_count > 0) & (demand > 1e-15)
            if active.any():
                np.copyto(ratios, inf)
                np.divide(residual, demand, out=ratios, where=active)
                j = int(np.argmin(ratios))
                t = float(ratios[j])
                if t < inf:
                    theta = t
                    limiting_res = j
            if bounded:
                b_idx = np.fromiter(bounded, dtype=np.int64, count=len(bounded))
                b_ratios = (bounds[b_idx] - rates[b_idx]) / weights[b_idx]
                k = int(np.argmin(b_ratios))
                t = float(b_ratios[k])
                if t < theta:
                    theta = t
                    limiting_res = -1
                    limiting_act = int(b_idx[k])

            if theta == inf:
                rates[unfrozen] = inf
                break

            if theta > 0:
                rates[unfrozen] += theta * weights[unfrozen]
                residual -= theta * demand

            frozen: Dict[int, None] = {}
            sat = (user_count > 0) & (residual <= sat_tol)
            for j in np.nonzero(sat)[0]:
                residual[j] = 0.0
                frozen.update(users[j])
            for i in bounded:
                if rates[i] >= bounds[i] * (1 - 1e-12):
                    rates[i] = bounds[i]
                    frozen[i] = None
            if limiting_res >= 0 and user_count[limiting_res] > 0:
                frozen.update(users[limiting_res])
                residual[limiting_res] = 0.0
            if limiting_act >= 0:
                rates[limiting_act] = bounds[limiting_act]
                frozen[limiting_act] = None

            if not frozen:  # pragma: no cover - defensive; cannot happen now
                frozen = {i: None for i in range(n) if unfrozen[i]}

            for i in frozen:
                if not unfrozen[i]:
                    continue
                w = acts[i].weight
                for j, factor in act_edges[i]:
                    uj = users[j]
                    del uj[i]
                    user_count[j] -= 1
                    demand[j] = demand[j] - factor * w if uj else 0.0
                unfrozen[i] = False
                n_unfrozen -= 1
                bounded.pop(i, None)

    for i, act in enumerate(acts):
        act.rate = float(rates[i])


class Component:
    """One connected component of the activity↔resource graph.

    Carries everything the incremental model needs to leave the component
    alone while nothing touches it: its member activities (ordered dict =
    deterministic iteration), the simulated time its members' ``remaining``
    was last integrated to, and a version stamp that lazily invalidates
    horizon-heap entries pushed for earlier solves.
    """

    __slots__ = ("id", "acts", "last_update", "version", "alive")

    def __init__(self, cid: int, now: float) -> None:
        self.id = cid
        self.acts: Dict[Activity, None] = {}
        self.last_update = now
        self.version = 0
        self.alive = True

    def __repr__(self) -> str:
        return f"<Component #{self.id} acts={len(self.acts)}>"


class _SlotTable:
    """Struct-of-arrays store for *simple* activities (the array engine).

    A simple activity uses exactly one resource and is that resource's sole
    user — a singleton component of the activity↔resource graph.  In the
    reference workloads this is the dominant case by far (E5: 100% of
    solves are singletons), and each one pays for a ``Component`` object, a
    per-component dict walk, and attribute chasing per solve.  The slot
    table strips that to parallel Python lists indexed by an integer slot:
    one row per live simple activity, scalar reads/writes on hot paths, and
    bulk numpy gathers when enough slots are dirty at one instant
    (:data:`SLOT_VECTOR_CROSSOVER`).

    Plain lists beat numpy arrays for the per-slot scalar traffic (indexed
    numpy scalar writes cost ~3x a list store); numpy enters only at batch
    solve points where whole columns are gathered at once.

    The table is an engine-internal mirror: ``Activity.rate`` and
    ``Activity.remaining`` are written back at exactly the observation
    points the object engine writes them (solve, integrate), so external
    behaviour — including ``run_record`` — is byte-identical.  A slot's
    ``version`` is bumped on every solve *and* on free, so horizon-heap
    entries referencing a recycled slot lazily invalidate, exactly like
    ``Component.version``.  ``cid`` holds the component id the slot
    consumed from the model's id counter, keeping id sequences (and thus
    split/merge determinism) identical across engines; promotion to a real
    ``Component`` reuses it.

    A slot's max-min rate depends only on quantities that are immutable
    after ``execute`` (resource capacity, usage factor, weight, bound), so
    it is solved once at admission — the same float operations as
    :func:`_solve_single`, hence the same bits — and every re-solve
    thereafter is just a horizon division against the integrated remaining
    work.  The finish threshold ``_FINISH_TOL * (1 + work)`` is likewise
    constant and precomputed.
    """

    __slots__ = (
        "act",
        "res",
        "rate0",
        "thresh",
        "remaining",
        "last",
        "version",
        "cid",
        "free",
        "live",
    )

    def __init__(self) -> None:
        self.act: List[Optional[Activity]] = []
        self.res: List[Optional[SharedResource]] = []
        #: Precomputed solved rate (bit-identical to ``_solve_single``).
        self.rate0: List[float] = []
        #: Precomputed finish threshold ``_FINISH_TOL * (1 + work)``.
        self.thresh: List[float] = []
        self.remaining: List[float] = []
        self.last: List[float] = []
        self.version: List[int] = []
        self.cid: List[int] = []
        #: Recycled slot indices (stack).
        self.free: List[int] = []
        #: Number of occupied slots.
        self.live: int = 0


class FairShareModel:
    """Drives activities to completion on a DES environment.

    The model partitions running activities into connected components of
    the activity↔resource graph, maintained incrementally: executing an
    activity merges the components of the resources it touches; removing
    one (finish/cancel) rebuilds — scoped to that component only — the
    partition via adjacency flood-fill (skipped when the removed activity
    used at most one resource, which cannot disconnect anything).

    Only components *touched* by a start/cancel/finish are marked dirty and
    re-solved; every other component keeps its rates, horizon, and
    remaining-work untouched.  Each component records the time its progress
    was last integrated, so ``remaining -= rate * dt`` sweeps are lazy and
    exact (rates are constant between perturbations).  Completion wake-ups
    come from a min-heap of per-component earliest-completion horizons with
    lazy invalidation via component version stamps.

    Determinism: within a component, solving and completion stay pinned to
    activity creation order, and completion events at equal times keep the
    environment's ``(time, priority, insertion id)`` order — workloads
    forming a single component are bit-identical to a global re-solve.

    Parameters
    ----------
    env:
        The DES environment to schedule wake-ups on.
    partition:
        ``False`` forces every activity into one global component — the
        pre-incremental behaviour, kept as a bit-exact reference for tests
        and old-vs-new benchmarks.
    vectorize:
        Per-model override for the solver kernel, passed through to
        :func:`solve_max_min` (``None`` = auto by component size; both
        kernels are bit-identical, so this only affects speed).
    array_engine:
        Per-model override for the struct-of-arrays slot engine
        (:class:`_SlotTable`); ``None`` (default) defers to the process-wide
        :func:`set_array_engine_enabled` switch.  Only effective with
        ``partition=True`` (the global-component reference mode has no
        singletons to accelerate).  Results are byte-identical either way.

    Event-count bookkeeping (``resolves`` et al.) feeds the E5 simulator
    performance benchmark; see :class:`repro.monitoring.SolverStats`.
    """

    def __init__(
        self,
        env: Environment,
        *,
        partition: bool = True,
        vectorize: Optional[bool] = None,
        array_engine: Optional[bool] = None,
    ) -> None:
        self.env = env
        self._partition = partition
        self._vectorize = vectorize
        use_array = _ARRAY_ENGINE if array_engine is None else array_engine
        #: Slot table for simple (single-resource, sole-user) activities;
        #: ``None`` runs everything through the object engine.
        self._array: Optional[_SlotTable] = (
            _SlotTable() if (use_array and partition) else None
        )
        #: activity → slot index (array engine's running-activity registry).
        self._slot_of: Dict[Activity, int] = {}
        #: resource → slot index of its sole (simple) user.
        self._res_slot: Dict[SharedResource, int] = {}
        #: slot indices awaiting a re-solve at the current instant.
        self._dirty_slots: Dict[int, None] = {}
        #: activity → owning component (also the running-activity registry).
        self._comp_of: Dict[Activity, Component] = {}
        #: resource → ordered dict of current users (adjacency index).
        self._res_users: Dict[SharedResource, Dict[Activity, None]] = {}
        #: live components, in creation order.
        self._components: Dict[Component, None] = {}
        #: components awaiting a re-solve at the current instant.
        self._dirty: Dict[Component, None] = {}
        #: lazily-invalidated min-heap of (horizon, entry id, comp, version).
        self._horizon_heap: List[tuple] = []
        self._entry_ids = count()
        self._comp_ids = count()
        self._wake_version: int = 0
        self._resolve_scheduled: bool = False
        #: Queued completion wake-ups and the ``_wake_version`` each was
        #: armed with.  ``_arm_wake`` deliberately never cancels previous
        #: wakes (stale ones no-op via the version check), so several can
        #: sit in the event queue at once; snapshot capture must be able to
        #: enumerate and claim every one of them.  Insertion-ordered.
        self._pending_wakes: Dict[Event, int] = {}

        # -- diagnostics / perf counters (see monitoring.SolverStats) -----
        #: Number of component rate re-computations performed.
        self.resolves: int = 0
        #: Number of coalesced solve events (dirty-set flushes).
        self.solve_events: int = 0
        #: Cumulative activities across all component solves ("solve scope").
        self.solved_activities: int = 0
        #: Largest single component ever solved.
        self.max_solve_scope: int = 0
        #: Cumulative wall-clock seconds spent inside ``solve_max_min``.
        self.solver_time: float = 0.0
        #: Component merges (activity start joining components).
        self.merges: int = 0
        #: Component splits (activity removal disconnecting a component).
        self.splits: int = 0
        #: Most live components observed at once.
        self.peak_components: int = 0
        #: Solve-kernel dispatch counts (see ``solve_max_min``).
        self.fast_solves: int = 0
        self.scalar_solves: int = 0
        self.vector_solves: int = 0
        #: Solves served by the struct-of-arrays slot engine (a subset of
        #: ``fast_solves``: every slot solve is a singleton solve).
        self.slot_solves: int = 0
        #: Optional flight recorder (see :mod:`repro.tracing`); attached by
        #: ``Simulation.run(trace=...)``.  Guarded per flush, so the
        #: disabled path costs one ``is None`` check per solve event.
        self.tracer: Optional[Any] = None

    # -- public API -------------------------------------------------------

    @property
    def activities(self) -> frozenset[Activity]:
        """Snapshot of the running activities."""
        if self._slot_of:
            return frozenset(self._comp_of) | frozenset(self._slot_of)
        return frozenset(self._comp_of)

    @property
    def component_count(self) -> int:
        """Number of live connected components (slot rows included)."""
        table = self._array
        return len(self._components) + (table.live if table is not None else 0)

    def component_sizes(self) -> List[int]:
        """Sizes of the live components, in component-creation order.

        Slot rows count as singleton components under their reserved
        component id, so both engines report the same list.
        """
        if not self._slot_of:
            return [len(comp.acts) for comp in self._components]
        table = self._array
        assert table is not None
        entries = [(comp.id, len(comp.acts)) for comp in self._components]
        entries.extend((table.cid[s], 1) for s in self._slot_of.values())
        entries.sort()
        return [size for _, size in entries]

    def component_size_histogram(self) -> Dict[int, int]:
        """Mapping of component size → number of components of that size."""
        histogram: Dict[int, int] = {}
        for comp in self._components:
            size = len(comp.acts)
            histogram[size] = histogram.get(size, 0) + 1
        if self._slot_of:
            histogram[1] = histogram.get(1, 0) + len(self._slot_of)
        return dict(sorted(histogram.items()))

    def execute(self, activity: Activity) -> Activity:
        """Start ``activity``; its ``done`` event fires at completion."""
        if activity._model is not None:
            raise ValueError(f"{activity!r} is already running")
        if activity.done is not None:
            raise ValueError(f"{activity!r} was already executed once")
        activity.done = Event(self.env)
        activity.started_at = self.env.now
        if activity.remaining <= 0:
            activity.finished_at = self.env.now
            activity.done.succeed(activity)
            return activity
        for res in activity.usages:
            if res.capacity <= 0:  # defensive; constructor forbids it
                raise ValueError(f"Cannot execute on zero-capacity {res!r}")
        activity._model = self

        usages = activity.usages
        if self._array is not None and len(usages) == 1:
            ((res, factor),) = usages.items()
            if res not in self._res_users and res not in self._res_slot:
                # Simple activity: sole user of its one resource — a
                # singleton component served entirely by the slot table.
                self._add_slot(activity, res, factor)
                self._request_resolve()
                return activity

        comp = self._join(activity)
        comp.acts[activity] = None
        self._comp_of[activity] = comp
        for res in usages:
            self._res_users.setdefault(res, {})[activity] = None
        self._mark_dirty(comp)
        self._request_resolve()
        return activity

    def execute_many(self, activities: Iterable[Activity]) -> None:
        """Start several activities at the current instant.

        Semantically a loop over :meth:`execute`.  With the array engine
        on, slot-eligible activities take a fused bulk path: the guard
        checks, admission bookkeeping and rate precompute run with every
        table column and dict hoisted to locals, and the re-solve request
        is coalesced to one call for the whole batch (the object engine's
        per-activity requests collapse to the same single URGENT event, so
        the event stream is unchanged).  Anything not slot-eligible falls
        back to :meth:`execute` mid-batch with identical semantics.
        """
        table = self._array
        if table is None:
            for activity in activities:
                self.execute(activity)
            return
        env = self.env
        now = env.now
        res_users = self._res_users
        res_slot = self._res_slot
        slot_of = self._slot_of
        dirty_slots = self._dirty_slots
        comp_ids = self._comp_ids
        free_stack = table.free
        t_act = table.act
        t_res = table.res
        t_rate0 = table.rate0
        t_thresh = table.thresh
        t_rem = table.remaining
        t_last = table.last
        t_version = table.version
        t_cid = table.cid
        added = False
        # One-entry rate memo: a task fan-out admits N activities with
        # identical (capacity, factor, weight, bound), so the precompute
        # runs once per batch instead of once per activity.  Exact float
        # equality on the inputs guarantees a bit-identical rate.
        m_cap: Any = None
        m_factor: Any = None
        m_w: Any = None
        m_bound: Any = None
        m_rate = 0.0
        for activity in activities:
            usages = activity.usages
            if (
                activity._model is not None
                or activity.done is not None
                or len(usages) != 1
            ):
                self._batch_peak(table)
                self.execute(activity)
                continue
            ((res, factor),) = usages.items()
            if res in res_users or res in res_slot:
                self._batch_peak(table)
                self.execute(activity)
                continue
            activity.done = Event(env)
            activity.started_at = now
            if activity.remaining <= 0:
                activity.finished_at = now
                activity.done.succeed(activity)
                continue
            cap = res.capacity
            if cap <= 0:  # defensive; constructor forbids it
                raise ValueError(f"Cannot execute on zero-capacity {res!r}")
            activity._model = self
            # Inlined _add_slot: same float ops, columns hoisted.
            w = activity.weight
            bound = activity.bound
            if cap == m_cap and factor == m_factor and w == m_w and bound == m_bound:
                rate = m_rate
            else:
                theta = inf
                d = factor * w
                if d > 1e-15:
                    theta = cap / d
                limited = False
                if bound < inf:
                    ratio = (bound - 0.0) / w
                    if ratio < theta:
                        theta = ratio
                        limited = True
                if theta == inf:
                    rate = inf
                else:
                    rate = 0.0
                    if theta > 0:
                        rate = 0.0 + theta * w
                    if bound < inf and rate >= bound * (1 - 1e-12):
                        rate = bound
                    if limited:
                        rate = bound
                m_cap = cap
                m_factor = factor
                m_w = w
                m_bound = bound
                m_rate = rate
            if free_stack:
                s = free_stack.pop()
                t_act[s] = activity
                t_res[s] = res
                t_rate0[s] = rate
                t_thresh[s] = _FINISH_TOL * (1 + activity.work)
                t_rem[s] = activity.remaining
                t_last[s] = now
                t_cid[s] = next(comp_ids)
            else:
                s = len(t_act)
                t_act.append(activity)
                t_res.append(res)
                t_rate0.append(rate)
                t_thresh.append(_FINISH_TOL * (1 + activity.work))
                t_rem.append(activity.remaining)
                t_last.append(now)
                t_version.append(0)
                t_cid.append(next(comp_ids))
            table.live += 1
            slot_of[activity] = s
            res_slot[res] = s
            dirty_slots[s] = None
            added = True
        self._batch_peak(table)
        if added:
            self._request_resolve()

    def _batch_peak(self, table: "_SlotTable") -> None:
        """Fold a run of slot admissions into the peak-components counter.

        Within a run of consecutive slot adds the total only grows, so
        checking at the end of the run observes its maximum; a fallback
        :meth:`execute` mid-batch can merge components (shrinking the
        total), so the check must also run right before each fallback.
        """
        total = len(self._components) + table.live
        if total > self.peak_components:
            self.peak_components = total

    def cancel(self, activity: Activity) -> None:
        """Abort a running activity; fails its ``done`` with a defused error.

        Cancelling an activity that already finished (or was never started)
        is a no-op, which simplifies engine teardown paths.
        """
        if activity._model is not self:
            return
        slot = self._slot_of.get(activity)
        if slot is not None:
            self._integrate_slot(slot)
            self._free_slot(slot)
        else:
            self._integrate(self._comp_of[activity])
            self._remove(activity)
        activity._model = None
        activity.rate = 0.0
        if activity.done is not None and not activity.done.triggered:
            exc = ActivityCancelled(activity)
            activity.done.fail(exc)
            activity.done.defuse()
        self._request_resolve()

    def sync_progress(self) -> None:
        """Integrate every component's ``remaining`` up to the current time.

        Lazy accounting leaves untouched components' ``remaining`` stale (at
        the value of their last perturbation, with rates constant since).
        Call this before inspecting ``Activity.remaining`` mid-run; the model
        itself never needs it.
        """
        for comp in self._components:
            self._integrate(comp)
        if self._slot_of:
            for slot in self._slot_of.values():
                self._integrate_slot(slot)

    # -- component maintenance --------------------------------------------

    def _join(self, activity: Activity) -> Component:
        """Find-or-create the component a starting activity belongs to,
        merging every component reachable through its resources."""
        if self._res_slot:
            # Any slot sharing a resource with the newcomer stops being
            # simple: promote it to a real Component first, then let the
            # ordinary merge machinery below see it as `involved`.
            for res in activity.usages:
                slot = self._res_slot.get(res)
                if slot is not None:
                    self._promote_slot(slot)
        involved: List[Component] = []
        if self._partition:
            seen: set[int] = set()
            for res in activity.usages:
                users = self._res_users.get(res)
                if not users:
                    continue
                comp = self._comp_of[next(iter(users))]
                if comp.id not in seen:
                    seen.add(comp.id)
                    involved.append(comp)
        else:
            involved = list(self._components)

        if not involved:
            comp = Component(next(self._comp_ids), self.env.now)
            self._components[comp] = None
            if len(self._components) > self.peak_components:
                self.peak_components = len(self._components)
            return comp

        # Union by size (ties: oldest component) keeps merge cost amortized.
        target = max(involved, key=lambda c: (len(c.acts), -c.id))
        self._integrate(target)
        for comp in involved:
            if comp is target:
                continue
            self._integrate(comp)
            for act in comp.acts:
                target.acts[act] = None
                self._comp_of[act] = target
            comp.acts.clear()
            comp.alive = False
            comp.version += 1
            self._components.pop(comp, None)
            self._dirty.pop(comp, None)
            self.merges += 1
        return target

    def _remove(self, activity: Activity) -> None:
        """Detach an activity; rebuild the partition of its component if the
        removal can have disconnected it (scoped flood-fill, never global)."""
        comp = self._comp_of.pop(activity)
        del comp.acts[activity]
        for res in activity.usages:
            users = self._res_users[res]
            del users[activity]
            if not users:
                del self._res_users[res]
        if not comp.acts:
            comp.alive = False
            comp.version += 1
            self._components.pop(comp, None)
            self._dirty.pop(comp, None)
            return
        # An activity on <= 1 resource is a leaf of the bipartite graph:
        # removing it cannot disconnect the remainder.
        if self._partition and len(activity.usages) > 1:
            self._split(comp)
        else:
            self._mark_dirty(comp)

    def _split(self, comp: Component) -> None:
        """Re-derive connected groups of ``comp`` after a removal."""
        unvisited = dict.fromkeys(comp.acts)
        groups: List[List[Activity]] = []
        for seed in comp.acts:
            if seed not in unvisited:
                continue
            del unvisited[seed]
            group = [seed]
            stack = [seed]
            while stack:
                act = stack.pop()
                for res in act.usages:
                    for other in self._res_users[res]:
                        if other in unvisited:
                            del unvisited[other]
                            group.append(other)
                            stack.append(other)
            groups.append(group)

        if len(groups) == 1:
            self._mark_dirty(comp)
            return

        comp.alive = False
        comp.version += 1
        self._components.pop(comp, None)
        self._dirty.pop(comp, None)
        self.splits += 1
        for group in groups:
            new = Component(next(self._comp_ids), comp.last_update)
            for act in group:
                new.acts[act] = None
                self._comp_of[act] = new
            self._components[new] = None
            self._mark_dirty(new)
        if len(self._components) > self.peak_components:
            self.peak_components = len(self._components)

    # -- slot engine (struct-of-arrays) -------------------------------------

    def _add_slot(self, activity: Activity, res: SharedResource, factor: float) -> None:
        """Register a simple activity in the slot table (array engine).

        Solves the slot's rate immediately — the inputs are immutable, so
        this replays :func:`_solve_single`'s float operations once and the
        per-resolve work shrinks to a horizon division.  ``Activity.rate``
        is *not* written here: the object engine only writes it at solve
        flushes, and the first flush happens at this same instant anyway.
        """
        w = activity.weight
        theta = inf
        d = factor * w
        if d > 1e-15:
            theta = res.capacity / d
        bound = activity.bound
        limited = False
        if bound < inf:
            ratio = (bound - 0.0) / w
            if ratio < theta:
                theta = ratio
                limited = True
        if theta == inf:
            rate = inf
        else:
            rate = 0.0
            if theta > 0:
                rate = 0.0 + theta * w
            if bound < inf and rate >= bound * (1 - 1e-12):
                rate = bound
            if limited:
                rate = bound
        thresh = _FINISH_TOL * (1 + activity.work)

        table = self._array
        assert table is not None
        if table.free:
            s = table.free.pop()
            table.act[s] = activity
            table.res[s] = res
            table.rate0[s] = rate
            table.thresh[s] = thresh
            table.remaining[s] = activity.remaining
            table.last[s] = self.env.now
            table.cid[s] = next(self._comp_ids)
        else:
            s = len(table.act)
            table.act.append(activity)
            table.res.append(res)
            table.rate0.append(rate)
            table.thresh.append(thresh)
            table.remaining.append(activity.remaining)
            table.last.append(self.env.now)
            table.version.append(0)
            table.cid.append(next(self._comp_ids))
        table.live += 1
        self._slot_of[activity] = s
        self._res_slot[res] = s
        self._dirty_slots[s] = None
        total = len(self._components) + table.live
        if total > self.peak_components:
            self.peak_components = total

    def _free_slot(self, s: int) -> None:
        """Release a slot; bump its version so heap entries lazily die."""
        table = self._array
        assert table is not None
        act = table.act[s]
        del self._slot_of[act]  # type: ignore[index]
        del self._res_slot[table.res[s]]  # type: ignore[index]
        table.act[s] = None
        table.res[s] = None
        table.version[s] += 1
        table.live -= 1
        table.free.append(s)
        self._dirty_slots.pop(s, None)

    def _promote_slot(self, s: int) -> None:
        """Turn a slot into a real singleton ``Component`` (same id).

        Happens when a second activity arrives on the slot's resource: the
        activity is no longer "simple", so it rejoins the object engine.
        Integration runs first, so the component's ``last_update`` and the
        activity's ``remaining`` match what the object engine would hold.
        ``Activity.rate`` is left alone: both engines last wrote it at the
        same solve point (or never, for a slot added this instant).
        """
        table = self._array
        assert table is not None
        self._integrate_slot(s)
        act = table.act[s]
        res = table.res[s]
        assert act is not None and res is not None
        comp = Component(table.cid[s], table.last[s])
        comp.acts[act] = None
        self._components[comp] = None
        self._comp_of[act] = comp
        self._res_users[res] = {act: None}
        was_dirty = s in self._dirty_slots
        self._free_slot(s)
        if was_dirty:
            self._dirty[comp] = None

    def _integrate_slot(self, s: int) -> None:
        """Integrate one slot's remaining work up to the current time.

        Uses the precomputed ``rate0``: time cannot advance between a
        slot's admission and its first solve flush (the resolve event fires
        URGENT at the same instant), so whenever ``dt > 0`` the applied
        rate equals the precomputed one.
        """
        table = self._array
        assert table is not None
        now = self.env.now
        dt = now - table.last[s]
        if dt > 0:
            rate = table.rate0[s]
            if rate == inf:
                table.remaining[s] = 0.0
                table.act[s].remaining = 0.0  # type: ignore[union-attr]
            elif rate > 0:
                rem = table.remaining[s] - rate * dt
                if rem < 0.0:
                    rem = 0.0
                table.remaining[s] = rem
                table.act[s].remaining = rem  # type: ignore[union-attr]
        table.last[s] = now

    # -- lazy progress ------------------------------------------------------

    def _integrate(self, comp: Component) -> None:
        """Integrate a component's remaining work up to the current time."""
        dt = self.env.now - comp.last_update
        if dt > 0:
            for act in comp.acts:
                rate = act.rate
                if rate == inf:
                    act.remaining = 0.0
                elif rate > 0:
                    act.remaining = max(0.0, act.remaining - rate * dt)
        comp.last_update = self.env.now

    # -- solving ------------------------------------------------------------

    def _mark_dirty(self, comp: Component) -> None:
        self._dirty[comp] = None

    def _request_resolve(self) -> None:
        """Coalesce same-instant set changes into a single re-solve.

        Starting a 64-node compute task adds 64 activities at the same
        timestamp; solving once per addition would be O(n^2).  Instead an
        URGENT zero-delay event triggers one solve after all mutations of
        the current instant are in.
        """
        self._wake_version += 1  # invalidate in-flight wake-ups immediately
        if self._resolve_scheduled:
            return
        self._resolve_scheduled = True
        resolve = self.env.pooled_event()
        resolve.callbacks.append(lambda _e: self._do_resolve())
        self.env.schedule(resolve, priority=URGENT)

    def _do_resolve(self) -> None:
        self._resolve_scheduled = False
        self._flush()

    def _flush(self) -> None:
        """Re-solve every dirty component/slot and re-arm the completion wake."""
        if self._dirty or self._dirty_slots:
            self.solve_events += 1
            now = self.env.now
            solved_components = 0
            solved_scope = 0
            if self._dirty:
                dirty, self._dirty = self._dirty, {}
                for comp in dirty:
                    if not comp.alive or not comp.acts:
                        continue
                    started = perf_counter()
                    path = solve_max_min(comp.acts, vectorize=self._vectorize)
                    self.solver_time += perf_counter() - started
                    if path == "fast":
                        self.fast_solves += 1
                    elif path == "vector":
                        self.vector_solves += 1
                    else:
                        self.scalar_solves += 1
                    self.resolves += 1
                    size = len(comp.acts)
                    self.solved_activities += size
                    solved_components += 1
                    solved_scope += size
                    if size > self.max_solve_scope:
                        self.max_solve_scope = size

                    horizon = inf
                    for act in comp.acts:
                        if act.rate == inf or act.remaining <= _FINISH_TOL * (1 + act.work):
                            horizon = 0.0
                            break
                        if act.rate > 0:
                            horizon = min(horizon, act.remaining / act.rate)
                    if horizon == inf:
                        # Nothing can progress (all rates zero) — should not
                        # happen with positive capacities; avoid hanging silently.
                        raise RuntimeError(
                            "FairShareModel deadlock: no activity can progress"
                        )
                    comp.version += 1
                    heappush(
                        self._horizon_heap,
                        (now + horizon, next(self._entry_ids), comp, comp.version),
                    )
            if self._dirty_slots:
                slots = list(self._dirty_slots)
                self._dirty_slots.clear()
                n = self._solve_slots(slots, now)
                solved_components += n
                solved_scope += n
            self._compact_heap()
            tracer = self.tracer
            if tracer is not None and solved_components:
                tracer.instant(
                    "solver.resolve",
                    "solver",
                    "resolve",
                    now,
                    components=solved_components,
                    activities=solved_scope,
                )
        self._arm_wake()

    def _solve_slots(self, slots: List[int], now: float) -> int:
        """Re-solve every dirty slot; returns how many were solved.

        Rates were precomputed at admission (:meth:`_add_slot`), so a
        re-solve reduces to the batched completion-horizon recomputation:
        per slot, one finished check and one ``remaining / rate`` division,
        then a horizon-heap push — the same float operations (hence bits)
        as the object engine's per-component ``_flush`` loop.  Above
        :data:`SLOT_VECTOR_CROSSOVER` the divisions run as one numpy sweep
        (float64 elementwise ops are IEEE-identical, so only speed
        changes).
        """
        table = self._array
        assert table is not None
        started = perf_counter()
        heap = self._horizon_heap
        entry_ids = self._entry_ids
        acts = table.act
        rate0 = table.rate0
        version = table.version
        count_solved = 0
        if (
            _np is not None
            and self._vectorize is not False
            and len(slots) >= SLOT_VECTOR_CROSSOVER
        ):
            np = _np
            idx = [s for s in slots if acts[s] is not None]
            if idx:
                rates = np.array([rate0[s] for s in idx])
                rem = np.array([table.remaining[s] for s in idx])
                thresh = np.array([table.thresh[s] for s in idx])
                finished = (rates == inf) | (rem <= thresh)
                horizons = np.full(len(idx), inf)
                with np.errstate(divide="ignore", invalid="ignore"):
                    np.divide(rem, rates, out=horizons, where=rates > 0)
                horizons[finished] = 0.0
                if np.isinf(horizons).any():
                    raise RuntimeError(
                        "FairShareModel deadlock: no activity can progress"
                    )
                abs_h = now + horizons
                for k, s in enumerate(idx):
                    acts[s].rate = rate0[s]  # type: ignore[union-attr]
                    v = version[s] + 1
                    version[s] = v
                    heappush(heap, (float(abs_h[k]), next(entry_ids), s, v))
                count_solved = len(idx)
        else:
            remaining = table.remaining
            thresh = table.thresh
            for s in slots:
                act = acts[s]
                if act is None:
                    continue
                rate = rate0[s]
                act.rate = rate
                rem = remaining[s]
                if rate == inf or rem <= thresh[s]:
                    horizon = 0.0
                elif rate > 0:
                    horizon = rem / rate
                else:
                    raise RuntimeError(
                        "FairShareModel deadlock: no activity can progress"
                    )
                v = version[s] + 1
                version[s] = v
                heappush(heap, (now + horizon, next(entry_ids), s, v))
                count_solved += 1
        self.solver_time += perf_counter() - started
        self.resolves += count_solved
        self.fast_solves += count_solved
        self.slot_solves += count_solved
        self.solved_activities += count_solved
        if count_solved and self.max_solve_scope < 1:
            self.max_solve_scope = 1
        return count_solved

    def _compact_heap(self) -> None:
        """Drop stale horizon entries once they dominate the heap."""
        heap = self._horizon_heap
        table = self._array
        live = table.live if table is not None else 0
        if len(heap) > 64 and len(heap) > 4 * (len(self._components) + live):
            if table is None:
                self._horizon_heap = [
                    entry
                    for entry in heap
                    if entry[3] == entry[2].version and entry[2].alive
                ]
            else:
                version = table.version
                acts = table.act
                fresh = []
                for entry in heap:
                    ref = entry[2]
                    if type(ref) is int:
                        if entry[3] == version[ref] and acts[ref] is not None:
                            fresh.append(entry)
                    elif entry[3] == ref.version and ref.alive:
                        fresh.append(entry)
                self._horizon_heap = fresh
            heapify(self._horizon_heap)

    # -- completion wake-ups -------------------------------------------------

    def _arm_wake(self) -> None:
        """Schedule one wake-up at the earliest valid horizon (comp or slot)."""
        self._wake_version += 1
        heap = self._horizon_heap
        table = self._array
        while heap:
            _, _, ref, version = heap[0]
            if type(ref) is int:
                if version != table.version[ref] or table.act[ref] is None:  # type: ignore[union-attr]
                    heappop(heap)
                    continue
            elif version != ref.version or not ref.alive or not ref.acts:
                heappop(heap)
                continue
            break
        if not heap:
            return
        version = self._wake_version
        wake = self.env.pooled_event()
        self._pending_wakes[wake] = version
        wake.callbacks.append(lambda _e: self._wake_fired(wake, version))
        self.env.schedule_at(wake, heap[0][0], priority=URGENT)

    def _wake_fired(self, wake: Event, version: int) -> None:
        """Deregister a fired wake-up, then handle it.

        The pop must happen even for stale wakes: once processed, the
        pooled event can be recycled, so leaving it in ``_pending_wakes``
        would let a later snapshot claim an event that now serves an
        unrelated purpose.
        """
        self._pending_wakes.pop(wake, None)
        self._on_wake(version)

    def _on_wake(self, version: int) -> None:
        if version != self._wake_version:
            return  # stale wake-up; the activity set changed since
        now = self.env.now
        heap = self._horizon_heap
        table = self._array
        due: List[Component] = []
        due_slots: List[int] = []
        while heap:
            horizon, _, ref, entry_version = heap[0]
            if type(ref) is int:
                if entry_version != table.version[ref] or table.act[ref] is None:  # type: ignore[union-attr]
                    heappop(heap)
                    continue
                if horizon > now:
                    break
                heappop(heap)
                due_slots.append(ref)
            else:
                if entry_version != ref.version or not ref.alive or not ref.acts:
                    heappop(heap)
                    continue
                if horizon > now:
                    break
                heappop(heap)
                due.append(ref)
        if not due and not due_slots:
            self._arm_wake()
            return

        finished: List[Activity] = []
        finished_slots: Dict[Activity, int] = {}
        for comp in due:
            self._integrate(comp)
            for act in comp.acts:
                if act.rate == inf or act.remaining <= _FINISH_TOL * (1 + act.work):
                    finished.append(act)
            # Always re-solve a component that reached its horizon, even if
            # float drift left nothing quite finished: the new (shorter)
            # horizon re-arms and converges within tolerance.
            self._mark_dirty(comp)
        if due_slots:
            # Inlined _integrate_slot + finished check, columns hoisted.
            t_act = table.act  # type: ignore[union-attr]
            t_rate0 = table.rate0  # type: ignore[union-attr]
            t_rem = table.remaining  # type: ignore[union-attr]
            t_last = table.last  # type: ignore[union-attr]
            t_thresh = table.thresh  # type: ignore[union-attr]
            dirty_slots = self._dirty_slots
            for s in due_slots:
                act = t_act[s]
                rate = t_rate0[s]
                rem = t_rem[s]
                dt = now - t_last[s]
                if dt > 0:
                    if rate == inf:
                        rem = 0.0
                        t_rem[s] = 0.0
                        act.remaining = 0.0  # type: ignore[union-attr]
                    elif rate > 0:
                        rem = rem - rate * dt
                        if rem < 0.0:
                            rem = 0.0
                        t_rem[s] = rem
                        act.remaining = rem  # type: ignore[union-attr]
                    t_last[s] = now
                else:
                    t_last[s] = now
                if rate == inf or rem <= t_thresh[s]:
                    finished.append(act)  # type: ignore[arg-type]
                    finished_slots[act] = s  # type: ignore[index]
                # Re-dirty like components; a finished slot's dirty mark is
                # dropped again by the free below (as _remove does for comps).
                dirty_slots[s] = None

        finished.sort(key=lambda a: a._seq)  # deterministic completion order
        if finished_slots and not due:
            # Pure-slot completion burst (the hot shape): inlined _free_slot.
            t_act = table.act  # type: ignore[union-attr]
            t_res = table.res  # type: ignore[union-attr]
            t_version = table.version  # type: ignore[union-attr]
            free_stack = table.free  # type: ignore[union-attr]
            slot_of = self._slot_of
            res_slot = self._res_slot
            dirty_slots = self._dirty_slots
            finished_count = len(finished)
            for act in finished:
                s = finished_slots[act]
                del slot_of[act]
                del res_slot[t_res[s]]
                t_act[s] = None
                t_res[s] = None
                t_version[s] += 1
                free_stack.append(s)
                dirty_slots.pop(s, None)
                act._model = None
                act.remaining = 0.0
                act.rate = 0.0
                act.finished_at = now
                act.done.succeed(act)
            table.live -= finished_count  # type: ignore[union-attr]
        else:
            for act in finished:
                s = finished_slots.get(act)
                if s is not None:
                    self._free_slot(s)
                else:
                    self._remove(act)
                act._model = None
                act.remaining = 0.0
                act.rate = 0.0
                act.finished_at = now
                act.done.succeed(act)
        self._flush()

    # -- snapshot/restore ---------------------------------------------------

    def capture_state(self, registry: Any, res_index: Dict[SharedResource, int]) -> dict:
        """Snapshot the model at a quiet boundary (see docs/REPLAY.md).

        ``registry`` receives a claim for every model-owned object another
        module (or the environment's queue walk) may reference: running
        activities under ``act.<seq>`` and queued completion wake-ups under
        ``model.wake.<k>``.  ``res_index`` maps every shared resource to its
        positional index in the platform's deterministic resource walk
        (:meth:`repro.platform.topology` — names are user-controlled and may
        collide, positions cannot).

        Counter capture consumes one tick (``next(counter)``): the consumed
        value is the snapshot's, and the live run's future ids shift up by
        one uniformly — order-preserving, hence unobservable, since entry
        ids only break heap ties and component ids only break merge ties
        among coexisting objects.
        """
        if self._dirty or self._dirty_slots:
            raise RuntimeError("Cannot snapshot: model has unflushed dirty state")
        if self._resolve_scheduled:
            raise RuntimeError("Cannot snapshot: a resolve event is in flight")
        if self.tracer is not None:
            raise RuntimeError("Cannot snapshot: a tracer is attached to the model")

        acts = sorted(
            list(self._comp_of) + list(self._slot_of), key=lambda a: a._seq
        )
        act_records = []
        for act in acts:
            sid = f"act.{act._seq}"
            registry.claim(sid, act)
            usages = []
            for res, factor in act.usages.items():
                idx = res_index.get(res)
                if idx is None:
                    raise RuntimeError(
                        f"Activity uses unindexed resource {res!r}; the "
                        "platform resource walk must cover every resource"
                    )
                usages.append([idx, factor])
            act_records.append(
                {
                    "sid": sid,
                    "seq": act._seq,
                    "work": act.work,
                    "remaining": act.remaining,
                    "usages": usages,
                    "weight": act.weight,
                    "bound": act.bound,
                    "payload": list(act.payload) if act.payload is not None else None,
                    "rate": act.rate,
                    "started_at": act.started_at,
                }
            )

        components = [
            {
                "cid": comp.id,
                "last_update": comp.last_update,
                "version": comp.version,
                "acts": [f"act.{a._seq}" for a in comp.acts],
            }
            for comp in self._components
        ]
        res_users = [
            [res_index[res], [f"act.{a._seq}" for a in users]]
            for res, users in self._res_users.items()
        ]

        table = self._array
        slots = None
        if table is not None:
            slots = {
                "act": [
                    f"act.{a._seq}" if a is not None else None for a in table.act
                ],
                "res": [
                    res_index[r] if r is not None else None for r in table.res
                ],
                "rate0": list(table.rate0),
                "thresh": list(table.thresh),
                "remaining": list(table.remaining),
                "last": list(table.last),
                "version": list(table.version),
                "cid": list(table.cid),
                "free": list(table.free),
                "live": table.live,
            }

        # Live horizon entries only: stale ones (version mismatch, dead or
        # freed referent) would be lazily dropped by _arm_wake/_on_wake
        # without any observable effect, and may reference dead Component
        # objects that cannot be rebuilt.
        heap_records = []
        for time, entry_id, ref, version in sorted(self._horizon_heap):
            if type(ref) is int:
                if table is None or version != table.version[ref] or table.act[ref] is None:
                    continue
                heap_records.append([time, entry_id, ["slot", ref], version])
            else:
                if version != ref.version or not ref.alive or not ref.acts:
                    continue
                heap_records.append([time, entry_id, ["comp", ref.id], version])

        wakes = []
        for k, (wake, version) in enumerate(self._pending_wakes.items()):
            sid = f"model.wake.{k}"
            registry.claim(sid, wake)
            wakes.append([sid, version])

        return {
            "partition": self._partition,
            "vectorize": self._vectorize,
            "array": table is not None,
            "activities": act_records,
            "act_counter": next(Activity._counter),
            "components": components,
            "res_users": res_users,
            "slots": slots,
            "slot_of": [[f"act.{a._seq}", s] for a, s in self._slot_of.items()],
            "res_slot": [[res_index[r], s] for r, s in self._res_slot.items()],
            "horizon_heap": heap_records,
            "entry_ids": next(self._entry_ids),
            "comp_ids": next(self._comp_ids),
            "wake_version": self._wake_version,
            "wakes": wakes,
            "counters": {
                "resolves": self.resolves,
                "solve_events": self.solve_events,
                "solved_activities": self.solved_activities,
                "max_solve_scope": self.max_solve_scope,
                "solver_time": self.solver_time,
                "merges": self.merges,
                "splits": self.splits,
                "peak_components": self.peak_components,
                "fast_solves": self.fast_solves,
                "scalar_solves": self.scalar_solves,
                "vector_solves": self.vector_solves,
                "slot_solves": self.slot_solves,
            },
        }

    def restore_state(
        self,
        state: dict,
        registry: Any,
        resources: List[SharedResource],
    ) -> None:
        """Rebuild the model from :meth:`capture_state` output.

        The model must be freshly constructed with the captured engine
        flags (``partition``/``vectorize``/``array_engine``); state is
        rebuilt by direct assignment, never by re-admission through
        :meth:`execute` (which would re-solve, re-count and re-schedule).
        Queued wake events are recreated here and claimed in ``registry``
        so the environment's queue restore can re-link them; the event
        pool starts empty — a captured pooled event is never handed back
        out by a restored run.
        """
        if (self._array is not None) != bool(state["array"]):
            raise RuntimeError(
                "Engine-mode mismatch: snapshot was captured with "
                f"array_engine={state['array']}"
            )
        env = self.env

        acts_by_sid: Dict[str, Activity] = {}
        for rec in state["activities"]:
            act = Activity.__new__(Activity)
            act.work = rec["work"]
            act.remaining = rec["remaining"]
            act.usages = {resources[i]: factor for i, factor in rec["usages"]}
            act.weight = rec["weight"]
            act.bound = rec["bound"]
            payload = rec["payload"]
            act.payload = tuple(payload) if payload is not None else None
            act.rate = rec["rate"]
            act.done = Event(env)
            act.started_at = rec["started_at"]
            act.finished_at = None
            act._model = self
            act._seq = rec["seq"]
            acts_by_sid[rec["sid"]] = act
            registry.claim(rec["sid"], act)

        comp_by_cid: Dict[int, Component] = {}
        for rec in state["components"]:
            comp = Component(rec["cid"], rec["last_update"])
            comp.version = rec["version"]
            for sid in rec["acts"]:
                act = acts_by_sid[sid]
                comp.acts[act] = None
                self._comp_of[act] = comp
            self._components[comp] = None
            comp_by_cid[rec["cid"]] = comp

        for idx, sids in state["res_users"]:
            self._res_users[resources[idx]] = {
                acts_by_sid[sid]: None for sid in sids
            }

        table = self._array
        if table is not None:
            slots = state["slots"]
            table.act = [
                acts_by_sid[sid] if sid is not None else None
                for sid in slots["act"]
            ]
            table.res = [
                resources[i] if i is not None else None for i in slots["res"]
            ]
            table.rate0 = list(slots["rate0"])
            table.thresh = list(slots["thresh"])
            table.remaining = list(slots["remaining"])
            table.last = list(slots["last"])
            table.version = list(slots["version"])
            table.cid = list(slots["cid"])
            table.free = list(slots["free"])
            table.live = slots["live"]
        for sid, s in state["slot_of"]:
            self._slot_of[acts_by_sid[sid]] = s
        for idx, s in state["res_slot"]:
            self._res_slot[resources[idx]] = s

        heap: List[tuple] = []
        for time, entry_id, (kind, ref), version in state["horizon_heap"]:
            heap.append(
                (
                    time,
                    entry_id,
                    ref if kind == "slot" else comp_by_cid[ref],
                    version,
                )
            )
        self._horizon_heap = heap  # sorted at capture: a valid heap

        self._entry_ids = count(state["entry_ids"] + 1)
        self._comp_ids = count(state["comp_ids"] + 1)
        self._wake_version = state["wake_version"]
        for sid, version in state["wakes"]:
            wake = PooledEvent(env)
            wake._ok = True
            wake._value = None
            self._pending_wakes[wake] = version
            wake.callbacks.append(
                lambda _e, w=wake, v=version: self._wake_fired(w, v)
            )
            registry.claim(sid, wake)

        # The class-global activity counter only ever moves forward: new
        # activities must outrank every restored _seq (relative order is
        # all the determinism contract needs), but rewinding would break
        # other live simulations in the same process.
        cur = next(Activity._counter)
        if cur < state["act_counter"]:
            Activity._counter = count(state["act_counter"] + 1)

        counters = state["counters"]
        self.resolves = counters["resolves"]
        self.solve_events = counters["solve_events"]
        self.solved_activities = counters["solved_activities"]
        self.max_solve_scope = counters["max_solve_scope"]
        self.solver_time = counters["solver_time"]
        self.merges = counters["merges"]
        self.splits = counters["splits"]
        self.peak_components = counters["peak_components"]
        self.fast_solves = counters["fast_solves"]
        self.scalar_solves = counters["scalar_solves"]
        self.vector_solves = counters["vector_solves"]
        self.slot_solves = counters["slot_solves"]
