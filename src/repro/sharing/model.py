"""Max-min fair sharing of resources among concurrent activities.

The model is the classic fluid one used by SimGrid's L07/network models:
every activity ``a`` progresses at a rate ``r_a`` subject to

* capacity: for each resource ``R``:  ``sum_a u_{a,R} * r_a <= C_R``
* bound:    ``r_a <= bound_a`` (e.g. a single node cannot compute faster
  than its flops rate, a flow cannot exceed its NIC bandwidth)

with the *weighted max-min fair* solution computed by progressive filling:
all unfrozen activities' rates grow proportionally to their weights until a
resource saturates (or a bound is hit); the involved activities freeze; the
process repeats.  Completion times then follow from ``remaining / r_a``.

Because max-min fairness decomposes exactly over the *connected components*
of the bipartite activity↔resource graph (two activities can only influence
each other's rates through a chain of shared resources), the model keeps
that partition incrementally and re-solves only the components actually
touched by a start/cancel/finish — SimGrid's lazy partial invalidation.
Jobs on disjoint nodes stop paying for each other at every event; progress
(``remaining -= rate * dt``) is likewise integrated lazily, only when a
component is perturbed or completes, which is exact because rates are
constant between the events that touch a component.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from itertools import count
from math import inf
from time import perf_counter
from typing import Any, Dict, Iterable, List, Optional

from repro.des.environment import Environment
from repro.des.events import Event, URGENT

try:  # numpy backs the vectorized solver; scalar path needs nothing
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None


#: Relative slack used when deciding that remaining work hit zero.
_FINISH_TOL = 1e-9

#: Component size from which the auto dispatch (``vectorize=None``) picks
#: the numpy kernel; below it, array setup costs more than the dict scans.
VECTOR_CROSSOVER = 32

#: Process-wide default for ``solve_max_min``'s auto dispatch: ``True``
#: forces the vectorized kernel, ``False`` forces the scalar loop, ``None``
#: selects by component size.  Tests flip this for whole-run A/B checks.
DEFAULT_VECTORIZE: Optional[bool] = None


class ActivityCancelled(Exception):
    """Failure value of ``activity.done`` when an activity is cancelled."""

    def __init__(self, activity: "Activity") -> None:
        super().__init__(f"{activity!r} was cancelled")
        self.activity = activity


class SharedResource:
    """A resource with a fixed service capacity shared by activities.

    Parameters
    ----------
    name:
        Diagnostic label (e.g. ``"node03.cpu"`` or ``"pfs.write"``).
    capacity:
        Service rate in work-units/second.  Must be positive and finite
        unless the resource is declared unlimited (``capacity=inf``).
    """

    __slots__ = ("name", "capacity")

    def __init__(self, name: str, capacity: float) -> None:
        if capacity <= 0:
            raise ValueError(f"Resource {name!r}: capacity must be > 0, got {capacity}")
        self.name = name
        self.capacity = float(capacity)

    def __repr__(self) -> str:
        return f"<SharedResource {self.name} cap={self.capacity:g}>"


class Activity:
    """An amount of work progressing on a set of shared resources.

    Parameters
    ----------
    work:
        Total work (flops, bytes). Zero-work activities complete immediately
        upon execution.
    usages:
        Mapping of resource → usage factor.  An activity running at rate
        ``r`` consumes ``factor * r`` of each resource's capacity.  A plain
        flow over two links uses factor 1.0 on both; a compute task that
        stresses a node at half intensity uses factor 0.5.
    weight:
        Weight for the max-min fair share (default 1.0).
    bound:
        Hard cap on the activity's own rate (default unbounded).
    payload:
        Arbitrary user data carried to completion (used by the engine to
        map activities back to tasks).
    """

    __slots__ = (
        "work",
        "remaining",
        "usages",
        "weight",
        "bound",
        "payload",
        "rate",
        "done",
        "started_at",
        "finished_at",
        "_model",
        "_seq",
    )

    _counter = count()

    def __init__(
        self,
        work: float,
        usages: Dict[SharedResource, float],
        *,
        weight: float = 1.0,
        bound: float = inf,
        payload: Any = None,
    ) -> None:
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work}")
        if weight <= 0:
            raise ValueError(f"weight must be > 0, got {weight}")
        if bound <= 0:
            raise ValueError(f"bound must be > 0, got {bound}")
        for res, factor in usages.items():
            if factor <= 0:
                raise ValueError(
                    f"usage factor on {res.name!r} must be > 0, got {factor}"
                )
        self.work = float(work)
        self.remaining = float(work)
        self.usages = dict(usages)
        self.weight = float(weight)
        self.bound = float(bound)
        self.payload = payload
        #: Current progress rate, set by the solver.
        self.rate: float = 0.0
        #: Completion event; assigned when the activity is executed.
        self.done: Optional[Event] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._model: Optional["FairShareModel"] = None
        #: Creation-order id; fixes processing order for determinism.
        self._seq: int = next(Activity._counter)

    def __repr__(self) -> str:
        return (
            f"<Activity work={self.work:g} remaining={self.remaining:g} "
            f"rate={self.rate:g} payload={self.payload!r}>"
        )

    @property
    def running(self) -> bool:
        """True while the activity is registered with a model."""
        return self._model is not None


def solve_max_min(
    activities: Iterable[Activity], *, vectorize: Optional[bool] = None
) -> str:
    """Assign weighted max-min fair rates to ``activities`` in place.

    Implements progressive filling.  Activities with no resource usages are
    only limited by their ``bound`` (infinite bound → infinite rate, which
    the model treats as instantaneous completion of their remaining work).

    ``vectorize`` selects the kernel: ``False`` runs the reference scalar
    loop, ``True`` the numpy kernel, ``None`` (default) defers to
    :data:`DEFAULT_VECTORIZE` and otherwise auto-dispatches by component
    size (:data:`VECTOR_CROSSOVER`).  Both kernels — and the
    single-activity fast path — are *bit-identical*: same float operations
    in the same order, same freeze order, same tie-breaking (asserted by
    ``tests/sharing/test_vectorized_solver.py``), so campaign fingerprints
    do not depend on the dispatch.  Returns the path taken (``"fast"``,
    ``"scalar"``, or ``"vector"``) for the model's perf counters.
    """
    # Deterministic processing order (creation order): float accumulation
    # and tie-breaking must not depend on set iteration order, or identical
    # runs would diverge across processes.
    acts = list(activities)
    if not acts:
        return "scalar"
    if len(acts) == 1:  # dominant case: skip the sort machinery entirely
        _solve_single(acts[0])
        return "fast"
    acts.sort(key=lambda a: a._seq)
    mode = vectorize if vectorize is not None else DEFAULT_VECTORIZE
    if _np is not None and (
        mode is True or (mode is None and len(acts) >= VECTOR_CROSSOVER)
    ):
        _solve_vector(acts)
        return "vector"
    _solve_scalar(acts)
    return "scalar"


def _solve_single(act: Activity) -> None:
    """One-activity progressive filling, unrolled.

    The dominant case in practice (activities on disjoint nodes form
    singleton components).  Replays exactly the float operations the scalar
    loop performs for one activity: one theta round, bound snap included.
    """
    act.rate = 0.0
    usages = act.usages
    if not usages:
        act.rate = act.bound
        return
    w = act.weight
    theta = inf
    for res, factor in usages.items():
        d = factor * w
        if d > 1e-15:
            ratio = res.capacity / d
            if ratio < theta:
                theta = ratio
    bound = act.bound
    limited_by_bound = False
    if bound < inf:
        ratio = (bound - 0.0) / w
        if ratio < theta:
            theta = ratio
            limited_by_bound = True
    if theta == inf:
        act.rate = inf
        return
    rate = 0.0
    if theta > 0:
        rate = 0.0 + theta * w
    if bound < inf and rate >= bound * (1 - 1e-12):
        rate = bound
    if limited_by_bound:
        rate = bound
    act.rate = rate


def _solve_scalar(acts: List[Activity]) -> None:
    """Reference progressive-filling loop over dicts (creation-ordered)."""
    for act in acts:
        act.rate = 0.0

    # Unconstrained activities progress at their bound.  Ordered dicts
    # stand in for sets to keep iteration deterministic under deletion.
    unfrozen: Dict[Activity, None] = {}
    for act in acts:
        if act.usages:
            unfrozen[act] = None
        else:
            act.rate = act.bound

    if not unfrozen:
        return

    # Residual capacity, per-resource weighted demand, and user index —
    # demand is maintained incrementally as activities freeze, which keeps
    # the whole solve at O(edges + iterations x resources) instead of
    # re-summing every resource's users each round.
    residual: Dict[SharedResource, float] = {}
    demand: Dict[SharedResource, float] = {}
    users: Dict[SharedResource, Dict[Activity, None]] = {}
    for act in unfrozen:
        for res, factor in act.usages.items():
            if res not in residual:
                residual[res] = res.capacity
                demand[res] = 0.0
                users[res] = {}
            demand[res] += factor * act.weight
            users[res][act] = None

    bounded: Dict[Activity, None] = {
        act: None for act in unfrozen if act.bound < inf
    }

    while unfrozen:
        # The next rate increment `theta` is limited by the tightest
        # resource or by the closest per-activity bound; remember the
        # limiter so it is frozen even if float drift leaves it a hair
        # short of the saturation tolerance.
        theta = inf
        limiting_res: SharedResource | None = None
        limiting_act: Activity | None = None
        for res, cap in residual.items():
            if not users[res]:
                continue  # stale float residue in demand must not gate theta
            d = demand[res]
            if d > 1e-15:
                ratio = cap / d
                if ratio < theta:
                    theta = ratio
                    limiting_res = res
        for act in bounded:
            ratio = (act.bound - act.rate) / act.weight
            if ratio < theta:
                theta = ratio
                limiting_res = None
                limiting_act = act

        if theta == inf:
            # All remaining activities are unbounded and use only resources
            # without other users (cannot happen: they'd saturate); guard.
            for act in unfrozen:
                act.rate = inf
            break

        if theta > 0:
            for act in unfrozen:
                act.rate += theta * act.weight
            for res in residual:
                residual[res] -= theta * demand[res]

        # Freeze activities on saturated resources or at their bound.
        frozen: Dict[Activity, None] = {}
        for res, cap in residual.items():
            if users[res] and cap <= max(1e-12, 1e-12 * res.capacity):
                residual[res] = 0.0
                frozen.update(users[res])
        for act in bounded:
            if act.rate >= act.bound * (1 - 1e-12):
                act.rate = act.bound
                frozen[act] = None
        # Guarantee progress: the entity that determined theta is saturated
        # by construction, even when float drift hides it from the checks.
        if limiting_res is not None and users[limiting_res]:
            frozen.update(users[limiting_res])
            residual[limiting_res] = 0.0
        if limiting_act is not None:
            limiting_act.rate = limiting_act.bound
            frozen[limiting_act] = None

        if not frozen:  # pragma: no cover - defensive; cannot happen now
            frozen = dict(unfrozen)

        for act in frozen:
            if act not in unfrozen:
                continue
            for res, factor in act.usages.items():
                del users[res][act]
                demand[res] -= factor * act.weight
                if not users[res]:
                    demand[res] = 0.0  # drop cancellation residue
            del unfrozen[act]
            bounded.pop(act, None)


def _solve_vector(acts: List[Activity]) -> None:
    """Numpy progressive filling, bit-identical to :func:`_solve_scalar`.

    Index ``i`` stands in for the activity at position ``i`` of the
    creation-ordered ``acts`` list, and resources are numbered in the same
    first-encounter order the scalar loop builds its dicts in.  Every float
    operation is a float64 elementwise op matching a scalar Python-float op
    one-to-one (IEEE-identical), ``np.argmin`` returns the first occurrence
    of the minimum — the scalar loop's strict-``<`` first-win tie-break —
    and freezes are processed in the same insertion order.  The scalar
    demand *accumulation* (first-encounter order) and per-freeze demand
    decrements stay plain Python floats so rounding matches exactly.
    """
    np = _np
    n = len(acts)
    rates = np.zeros(n)
    weights = np.empty(n)
    bounds = np.empty(n)
    unfrozen = np.zeros(n, dtype=bool)
    n_unfrozen = 0
    for i, act in enumerate(acts):
        act.rate = 0.0
        weights[i] = act.weight
        bounds[i] = act.bound
        if act.usages:
            unfrozen[i] = True
            n_unfrozen += 1
        else:
            rates[i] = act.bound  # unconstrained: progress at the bound

    if n_unfrozen:
        # Resource tables, in the scalar loop's first-encounter order.
        res_index: Dict[SharedResource, int] = {}
        caps: List[float] = []
        demand_py: List[float] = []
        users: List[Dict[int, None]] = []
        act_edges: List[Optional[List[tuple]]] = [None] * n
        for i, act in enumerate(acts):
            if not unfrozen[i]:
                continue
            w = act.weight
            edges = []
            for res, factor in act.usages.items():
                j = res_index.get(res)
                if j is None:
                    j = len(caps)
                    res_index[res] = j
                    caps.append(res.capacity)
                    demand_py.append(0.0)
                    users.append({})
                demand_py[j] += factor * w
                users[j][i] = None
                edges.append((j, factor))
            act_edges[i] = edges
        m = len(caps)
        caps_arr = np.array(caps)
        residual = caps_arr.copy()
        demand = np.array(demand_py)
        user_count = np.fromiter(
            (len(u) for u in users), dtype=np.int64, count=m
        )
        sat_tol = np.maximum(1e-12, 1e-12 * caps_arr)
        bounded: Dict[int, None] = {
            i: None for i in range(n) if unfrozen[i] and acts[i].bound < inf
        }
        ratios = np.empty(m)

        while n_unfrozen:
            theta = inf
            limiting_res = -1
            limiting_act = -1
            active = (user_count > 0) & (demand > 1e-15)
            if active.any():
                np.copyto(ratios, inf)
                np.divide(residual, demand, out=ratios, where=active)
                j = int(np.argmin(ratios))
                t = float(ratios[j])
                if t < inf:
                    theta = t
                    limiting_res = j
            if bounded:
                b_idx = np.fromiter(bounded, dtype=np.int64, count=len(bounded))
                b_ratios = (bounds[b_idx] - rates[b_idx]) / weights[b_idx]
                k = int(np.argmin(b_ratios))
                t = float(b_ratios[k])
                if t < theta:
                    theta = t
                    limiting_res = -1
                    limiting_act = int(b_idx[k])

            if theta == inf:
                rates[unfrozen] = inf
                break

            if theta > 0:
                rates[unfrozen] += theta * weights[unfrozen]
                residual -= theta * demand

            frozen: Dict[int, None] = {}
            sat = (user_count > 0) & (residual <= sat_tol)
            for j in np.nonzero(sat)[0]:
                residual[j] = 0.0
                frozen.update(users[j])
            for i in bounded:
                if rates[i] >= bounds[i] * (1 - 1e-12):
                    rates[i] = bounds[i]
                    frozen[i] = None
            if limiting_res >= 0 and user_count[limiting_res] > 0:
                frozen.update(users[limiting_res])
                residual[limiting_res] = 0.0
            if limiting_act >= 0:
                rates[limiting_act] = bounds[limiting_act]
                frozen[limiting_act] = None

            if not frozen:  # pragma: no cover - defensive; cannot happen now
                frozen = {i: None for i in range(n) if unfrozen[i]}

            for i in frozen:
                if not unfrozen[i]:
                    continue
                w = acts[i].weight
                for j, factor in act_edges[i]:
                    uj = users[j]
                    del uj[i]
                    user_count[j] -= 1
                    demand[j] = demand[j] - factor * w if uj else 0.0
                unfrozen[i] = False
                n_unfrozen -= 1
                bounded.pop(i, None)

    for i, act in enumerate(acts):
        act.rate = float(rates[i])


class Component:
    """One connected component of the activity↔resource graph.

    Carries everything the incremental model needs to leave the component
    alone while nothing touches it: its member activities (ordered dict =
    deterministic iteration), the simulated time its members' ``remaining``
    was last integrated to, and a version stamp that lazily invalidates
    horizon-heap entries pushed for earlier solves.
    """

    __slots__ = ("id", "acts", "last_update", "version", "alive")

    def __init__(self, cid: int, now: float) -> None:
        self.id = cid
        self.acts: Dict[Activity, None] = {}
        self.last_update = now
        self.version = 0
        self.alive = True

    def __repr__(self) -> str:
        return f"<Component #{self.id} acts={len(self.acts)}>"


class FairShareModel:
    """Drives activities to completion on a DES environment.

    The model partitions running activities into connected components of
    the activity↔resource graph, maintained incrementally: executing an
    activity merges the components of the resources it touches; removing
    one (finish/cancel) rebuilds — scoped to that component only — the
    partition via adjacency flood-fill (skipped when the removed activity
    used at most one resource, which cannot disconnect anything).

    Only components *touched* by a start/cancel/finish are marked dirty and
    re-solved; every other component keeps its rates, horizon, and
    remaining-work untouched.  Each component records the time its progress
    was last integrated, so ``remaining -= rate * dt`` sweeps are lazy and
    exact (rates are constant between perturbations).  Completion wake-ups
    come from a min-heap of per-component earliest-completion horizons with
    lazy invalidation via component version stamps.

    Determinism: within a component, solving and completion stay pinned to
    activity creation order, and completion events at equal times keep the
    environment's ``(time, priority, insertion id)`` order — workloads
    forming a single component are bit-identical to a global re-solve.

    Parameters
    ----------
    env:
        The DES environment to schedule wake-ups on.
    partition:
        ``False`` forces every activity into one global component — the
        pre-incremental behaviour, kept as a bit-exact reference for tests
        and old-vs-new benchmarks.
    vectorize:
        Per-model override for the solver kernel, passed through to
        :func:`solve_max_min` (``None`` = auto by component size; both
        kernels are bit-identical, so this only affects speed).

    Event-count bookkeeping (``resolves`` et al.) feeds the E5 simulator
    performance benchmark; see :class:`repro.monitoring.SolverStats`.
    """

    def __init__(
        self,
        env: Environment,
        *,
        partition: bool = True,
        vectorize: Optional[bool] = None,
    ) -> None:
        self.env = env
        self._partition = partition
        self._vectorize = vectorize
        #: activity → owning component (also the running-activity registry).
        self._comp_of: Dict[Activity, Component] = {}
        #: resource → ordered dict of current users (adjacency index).
        self._res_users: Dict[SharedResource, Dict[Activity, None]] = {}
        #: live components, in creation order.
        self._components: Dict[Component, None] = {}
        #: components awaiting a re-solve at the current instant.
        self._dirty: Dict[Component, None] = {}
        #: lazily-invalidated min-heap of (horizon, entry id, comp, version).
        self._horizon_heap: List[tuple] = []
        self._entry_ids = count()
        self._comp_ids = count()
        self._wake_version: int = 0
        self._resolve_scheduled: bool = False

        # -- diagnostics / perf counters (see monitoring.SolverStats) -----
        #: Number of component rate re-computations performed.
        self.resolves: int = 0
        #: Number of coalesced solve events (dirty-set flushes).
        self.solve_events: int = 0
        #: Cumulative activities across all component solves ("solve scope").
        self.solved_activities: int = 0
        #: Largest single component ever solved.
        self.max_solve_scope: int = 0
        #: Cumulative wall-clock seconds spent inside ``solve_max_min``.
        self.solver_time: float = 0.0
        #: Component merges (activity start joining components).
        self.merges: int = 0
        #: Component splits (activity removal disconnecting a component).
        self.splits: int = 0
        #: Most live components observed at once.
        self.peak_components: int = 0
        #: Solve-kernel dispatch counts (see ``solve_max_min``).
        self.fast_solves: int = 0
        self.scalar_solves: int = 0
        self.vector_solves: int = 0
        #: Optional flight recorder (see :mod:`repro.tracing`); attached by
        #: ``Simulation.run(trace=...)``.  Guarded per flush, so the
        #: disabled path costs one ``is None`` check per solve event.
        self.tracer: Optional[Any] = None

    # -- public API -------------------------------------------------------

    @property
    def activities(self) -> frozenset[Activity]:
        """Snapshot of the running activities."""
        return frozenset(self._comp_of)

    @property
    def component_count(self) -> int:
        """Number of live connected components."""
        return len(self._components)

    def component_sizes(self) -> List[int]:
        """Sizes of the live components, in component-creation order."""
        return [len(comp.acts) for comp in self._components]

    def component_size_histogram(self) -> Dict[int, int]:
        """Mapping of component size → number of components of that size."""
        histogram: Dict[int, int] = {}
        for comp in self._components:
            size = len(comp.acts)
            histogram[size] = histogram.get(size, 0) + 1
        return dict(sorted(histogram.items()))

    def execute(self, activity: Activity) -> Activity:
        """Start ``activity``; its ``done`` event fires at completion."""
        if activity._model is not None:
            raise ValueError(f"{activity!r} is already running")
        if activity.done is not None:
            raise ValueError(f"{activity!r} was already executed once")
        activity.done = Event(self.env)
        activity.started_at = self.env.now
        if activity.remaining <= 0:
            activity.finished_at = self.env.now
            activity.done.succeed(activity)
            return activity
        for res in activity.usages:
            if res.capacity <= 0:  # defensive; constructor forbids it
                raise ValueError(f"Cannot execute on zero-capacity {res!r}")
        activity._model = self

        comp = self._join(activity)
        comp.acts[activity] = None
        self._comp_of[activity] = comp
        for res in activity.usages:
            self._res_users.setdefault(res, {})[activity] = None
        self._mark_dirty(comp)
        self._request_resolve()
        return activity

    def cancel(self, activity: Activity) -> None:
        """Abort a running activity; fails its ``done`` with a defused error.

        Cancelling an activity that already finished (or was never started)
        is a no-op, which simplifies engine teardown paths.
        """
        if activity._model is not self:
            return
        self._integrate(self._comp_of[activity])
        self._remove(activity)
        activity._model = None
        activity.rate = 0.0
        if activity.done is not None and not activity.done.triggered:
            exc = ActivityCancelled(activity)
            activity.done.fail(exc)
            activity.done.defuse()
        self._request_resolve()

    def sync_progress(self) -> None:
        """Integrate every component's ``remaining`` up to the current time.

        Lazy accounting leaves untouched components' ``remaining`` stale (at
        the value of their last perturbation, with rates constant since).
        Call this before inspecting ``Activity.remaining`` mid-run; the model
        itself never needs it.
        """
        for comp in self._components:
            self._integrate(comp)

    # -- component maintenance --------------------------------------------

    def _join(self, activity: Activity) -> Component:
        """Find-or-create the component a starting activity belongs to,
        merging every component reachable through its resources."""
        involved: List[Component] = []
        if self._partition:
            seen: set[int] = set()
            for res in activity.usages:
                users = self._res_users.get(res)
                if not users:
                    continue
                comp = self._comp_of[next(iter(users))]
                if comp.id not in seen:
                    seen.add(comp.id)
                    involved.append(comp)
        else:
            involved = list(self._components)

        if not involved:
            comp = Component(next(self._comp_ids), self.env.now)
            self._components[comp] = None
            if len(self._components) > self.peak_components:
                self.peak_components = len(self._components)
            return comp

        # Union by size (ties: oldest component) keeps merge cost amortized.
        target = max(involved, key=lambda c: (len(c.acts), -c.id))
        self._integrate(target)
        for comp in involved:
            if comp is target:
                continue
            self._integrate(comp)
            for act in comp.acts:
                target.acts[act] = None
                self._comp_of[act] = target
            comp.acts.clear()
            comp.alive = False
            comp.version += 1
            self._components.pop(comp, None)
            self._dirty.pop(comp, None)
            self.merges += 1
        return target

    def _remove(self, activity: Activity) -> None:
        """Detach an activity; rebuild the partition of its component if the
        removal can have disconnected it (scoped flood-fill, never global)."""
        comp = self._comp_of.pop(activity)
        del comp.acts[activity]
        for res in activity.usages:
            users = self._res_users[res]
            del users[activity]
            if not users:
                del self._res_users[res]
        if not comp.acts:
            comp.alive = False
            comp.version += 1
            self._components.pop(comp, None)
            self._dirty.pop(comp, None)
            return
        # An activity on <= 1 resource is a leaf of the bipartite graph:
        # removing it cannot disconnect the remainder.
        if self._partition and len(activity.usages) > 1:
            self._split(comp)
        else:
            self._mark_dirty(comp)

    def _split(self, comp: Component) -> None:
        """Re-derive connected groups of ``comp`` after a removal."""
        unvisited = dict.fromkeys(comp.acts)
        groups: List[List[Activity]] = []
        for seed in comp.acts:
            if seed not in unvisited:
                continue
            del unvisited[seed]
            group = [seed]
            stack = [seed]
            while stack:
                act = stack.pop()
                for res in act.usages:
                    for other in self._res_users[res]:
                        if other in unvisited:
                            del unvisited[other]
                            group.append(other)
                            stack.append(other)
            groups.append(group)

        if len(groups) == 1:
            self._mark_dirty(comp)
            return

        comp.alive = False
        comp.version += 1
        self._components.pop(comp, None)
        self._dirty.pop(comp, None)
        self.splits += 1
        for group in groups:
            new = Component(next(self._comp_ids), comp.last_update)
            for act in group:
                new.acts[act] = None
                self._comp_of[act] = new
            self._components[new] = None
            self._mark_dirty(new)
        if len(self._components) > self.peak_components:
            self.peak_components = len(self._components)

    # -- lazy progress ------------------------------------------------------

    def _integrate(self, comp: Component) -> None:
        """Integrate a component's remaining work up to the current time."""
        dt = self.env.now - comp.last_update
        if dt > 0:
            for act in comp.acts:
                rate = act.rate
                if rate == inf:
                    act.remaining = 0.0
                elif rate > 0:
                    act.remaining = max(0.0, act.remaining - rate * dt)
        comp.last_update = self.env.now

    # -- solving ------------------------------------------------------------

    def _mark_dirty(self, comp: Component) -> None:
        self._dirty[comp] = None

    def _request_resolve(self) -> None:
        """Coalesce same-instant set changes into a single re-solve.

        Starting a 64-node compute task adds 64 activities at the same
        timestamp; solving once per addition would be O(n^2).  Instead an
        URGENT zero-delay event triggers one solve after all mutations of
        the current instant are in.
        """
        self._wake_version += 1  # invalidate in-flight wake-ups immediately
        if self._resolve_scheduled:
            return
        self._resolve_scheduled = True
        resolve = self.env.pooled_event()
        resolve.callbacks.append(lambda _e: self._do_resolve())
        self.env.schedule(resolve, priority=URGENT)

    def _do_resolve(self) -> None:
        self._resolve_scheduled = False
        self._flush()

    def _flush(self) -> None:
        """Re-solve every dirty component and re-arm the completion wake."""
        if self._dirty:
            self.solve_events += 1
            dirty, self._dirty = self._dirty, {}
            now = self.env.now
            solved_components = 0
            solved_scope = 0
            for comp in dirty:
                if not comp.alive or not comp.acts:
                    continue
                started = perf_counter()
                path = solve_max_min(comp.acts, vectorize=self._vectorize)
                self.solver_time += perf_counter() - started
                if path == "fast":
                    self.fast_solves += 1
                elif path == "vector":
                    self.vector_solves += 1
                else:
                    self.scalar_solves += 1
                self.resolves += 1
                size = len(comp.acts)
                self.solved_activities += size
                solved_components += 1
                solved_scope += size
                if size > self.max_solve_scope:
                    self.max_solve_scope = size

                horizon = inf
                for act in comp.acts:
                    if act.rate == inf or act.remaining <= _FINISH_TOL * (1 + act.work):
                        horizon = 0.0
                        break
                    if act.rate > 0:
                        horizon = min(horizon, act.remaining / act.rate)
                if horizon == inf:
                    # Nothing can progress (all rates zero) — should not
                    # happen with positive capacities; avoid hanging silently.
                    raise RuntimeError(
                        "FairShareModel deadlock: no activity can progress"
                    )
                comp.version += 1
                heappush(
                    self._horizon_heap,
                    (now + horizon, next(self._entry_ids), comp, comp.version),
                )
            self._compact_heap()
            tracer = self.tracer
            if tracer is not None and solved_components:
                tracer.instant(
                    "solver.resolve",
                    "solver",
                    "resolve",
                    now,
                    components=solved_components,
                    activities=solved_scope,
                )
        self._arm_wake()

    def _compact_heap(self) -> None:
        """Drop stale horizon entries once they dominate the heap."""
        heap = self._horizon_heap
        if len(heap) > 64 and len(heap) > 4 * len(self._components):
            self._horizon_heap = [
                entry for entry in heap if entry[3] == entry[2].version and entry[2].alive
            ]
            heapify(self._horizon_heap)

    # -- completion wake-ups -------------------------------------------------

    def _arm_wake(self) -> None:
        """Schedule one wake-up at the earliest valid component horizon."""
        self._wake_version += 1
        heap = self._horizon_heap
        while heap:
            _, _, comp, version = heap[0]
            if version != comp.version or not comp.alive or not comp.acts:
                heappop(heap)
                continue
            break
        if not heap:
            return
        version = self._wake_version
        wake = self.env.pooled_event()
        wake.callbacks.append(lambda _e: self._on_wake(version))
        self.env.schedule_at(wake, heap[0][0], priority=URGENT)

    def _on_wake(self, version: int) -> None:
        if version != self._wake_version:
            return  # stale wake-up; the activity set changed since
        now = self.env.now
        heap = self._horizon_heap
        due: List[Component] = []
        while heap:
            horizon, _, comp, entry_version = heap[0]
            if entry_version != comp.version or not comp.alive or not comp.acts:
                heappop(heap)
                continue
            if horizon > now:
                break
            heappop(heap)
            due.append(comp)
        if not due:
            self._arm_wake()
            return

        finished: List[Activity] = []
        for comp in due:
            self._integrate(comp)
            for act in comp.acts:
                if act.rate == inf or act.remaining <= _FINISH_TOL * (1 + act.work):
                    finished.append(act)
            # Always re-solve a component that reached its horizon, even if
            # float drift left nothing quite finished: the new (shorter)
            # horizon re-arms and converges within tolerance.
            self._mark_dirty(comp)

        finished.sort(key=lambda a: a._seq)  # deterministic completion order
        for act in finished:
            self._remove(act)
            act._model = None
            act.remaining = 0.0
            act.rate = 0.0
            act.finished_at = now
            act.done.succeed(act)
        self._flush()
