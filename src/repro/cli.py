"""Command-line interface.

Subcommands::

    elastisim run       --platform p.json --workload w.json --algorithm easy
    elastisim generate  --num-jobs 100 --seed 0 --output w.json [mix options]
    elastisim validate  --platform p.json [--workload w.json]
    elastisim campaign run     --spec campaign.json [--workers N]
                               [--executor NAME] [--scenario-timeout S] [...]
    elastisim campaign worker  --queue-dir DIR [--worker-id ID] [...]
    elastisim campaign aggregate PATHS... [--output agg.json]
    elastisim campaign report PATHS... [--output-dir DIR] [--group-by K,K]
    elastisim campaign compare current.json baseline.json [...]
    elastisim trace record  --platform p.json --workload w.json --output t.json
    elastisim trace convert t.jsonl t.json
    elastisim trace check   t.jsonl [--nodes N]
    elastisim profile   [--jobs N] [--nodes N] [--cprofile] [--output p.json]
    elastisim whatif    --base s.json [--edited s2.json | --resume-at F]
    elastisim fuzz run     [--seed N] [--count N] [--algorithms a,b] [...]
    elastisim fuzz shrink  reproducer.json [--output-dir DIR] [--bisect]
    elastisim fuzz replay  reproducer.json [...]
    elastisim algorithms

``run`` prints the summary table and optionally writes per-job CSV /
summary JSON / utilization series to ``--output-dir``.  ``campaign run``
executes a whole scenario grid in parallel with result caching (see
``docs/CAMPAIGNS.md``).

Errors are reported on stderr — never as tracebacks — with distinct exit
codes so scripts and CI can tell failure classes apart:

====  ========================================================
code  meaning
====  ========================================================
0     success
1     regression or invariant violation found
2     usage error (bad flags, nothing to do)
3     bad input (platform / workload / campaign files)
4     unknown algorithm or scheduler misconfiguration
5     simulation or campaign runtime failure
70    internal error (a bug worth reporting)
====  ========================================================
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.batch import BatchError, Simulation
from repro.campaign import (
    ArtifactStore,
    CampaignError,
    CampaignRunner,
    CampaignStudyReport,
    STUDY_METRICS,
    StreamingAggregator,
    campaign_run_settings,
    executor_names,
    load_campaign,
    load_campaign_spec,
    result_fingerprint,
    worker_loop,
)
from repro.campaign import compare as campaign_compare
from repro.platform import PlatformError, load_platform
from repro.scheduler import SchedulerError
from repro.tracing import InvariantViolation, TraceError
from repro.workload import (
    WorkloadError,
    WorkloadSpec,
    generate_workload,
    load_workload,
    workload_to_dict,
)

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_USAGE = 2
EXIT_INPUT = 3
EXIT_ALGORITHM = 4
EXIT_RUNTIME = 5
EXIT_INTERNAL = 70


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="elastisim",
        description="ElastiSim reproduction: batch-system simulator for "
        "malleable workloads",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a simulation")
    run.add_argument("--platform", required=True, help="platform JSON file")
    run.add_argument("--workload", required=True, help="workload JSON file")
    run.add_argument(
        "--algorithm",
        default="easy",
        help="fcfs | easy | conservative | moldable | malleable",
    )
    run.add_argument(
        "--interval",
        type=float,
        default=None,
        help="periodic scheduler invocation interval (seconds)",
    )
    run.add_argument("--until", type=float, default=None, help="stop time")
    run.add_argument(
        "--output-dir", default=None, help="write jobs.csv / summary.json here"
    )
    run.add_argument(
        "--mtbf",
        type=float,
        default=None,
        help="inject Poisson node failures with this per-node MTBF (seconds)",
    )
    run.add_argument(
        "--mean-repair",
        type=float,
        default=300.0,
        help="mean node repair time when --mtbf is set",
    )
    run.add_argument(
        "--failure-seed", type=int, default=0, help="seed for --mtbf faults"
    )
    run.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a flight-recorder trace (*.json = Chrome trace-event "
        "format for Perfetto, anything else JSONL)",
    )
    run.add_argument(
        "--check-invariants",
        action="store_true",
        help="audit the run with the tracing invariant checker",
    )

    gen = sub.add_parser("generate", help="generate a synthetic workload")
    gen.add_argument("--output", required=True, help="output workload JSON")
    gen.add_argument("--num-jobs", type=int, default=100)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--mean-interarrival", type=float, default=30.0)
    gen.add_argument("--min-request", type=int, default=1)
    gen.add_argument("--max-request", type=int, default=32)
    gen.add_argument("--malleable-fraction", type=float, default=0.0)
    gen.add_argument("--moldable-fraction", type=float, default=0.0)
    gen.add_argument("--evolving-fraction", type=float, default=0.0)
    gen.add_argument("--data-per-node", type=float, default=0.0)
    gen.add_argument("--node-flops", type=float, default=1e12)
    gen.add_argument("--mean-runtime", type=float, default=300.0)
    gen.add_argument("--num-users", type=int, default=1)
    gen.add_argument(
        "--report",
        type=int,
        metavar="NUM_NODES",
        default=None,
        help="print a workload profile (offered load for this node count)",
    )

    val = sub.add_parser("validate", help="validate input files")
    val.add_argument("--platform", default=None)
    val.add_argument("--workload", default=None)

    campaign = sub.add_parser(
        "campaign", help="run scenario-grid campaigns and check regressions"
    )
    csub = campaign.add_subparsers(dest="campaign_command", required=True)

    crun = csub.add_parser("run", help="execute a campaign file")
    crun.add_argument("--spec", required=True, help="campaign JSON/TOML file")
    crun.add_argument(
        "--name", default=None, help="campaign name (default: spec file stem)"
    )
    crun.add_argument(
        "--output-dir",
        default=None,
        help="report directory (default campaign-results/<name>)",
    )
    crun.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: all cores; 1 = serial)",
    )
    crun.add_argument(
        "--cache-dir",
        default=None,
        help="result cache root (default $ELASTISIM_CACHE_DIR or ~/.cache)",
    )
    crun.add_argument(
        "--no-cache", action="store_true", help="neither read nor write the cache"
    )
    crun.add_argument(
        "--force", action="store_true", help="recompute everything, refresh the cache"
    )
    crun.add_argument(
        "--quiet", action="store_true", help="suppress per-scenario progress lines"
    )
    crun.add_argument(
        "--trace-dir",
        default=None,
        help="write one <scenario>.trace.jsonl per scenario here "
        "(disables cache reads)",
    )
    crun.add_argument(
        "--check-invariants",
        action="store_true",
        help="audit every scenario with the invariant checker; violations "
        "are reported as status=invariant_violation",
    )
    crun.add_argument(
        "--executor",
        default=None,
        choices=list(executor_names()),
        help="execution backend (default: spec's 'executor' key, else "
        "process-pool when parallel)",
    )
    crun.add_argument(
        "--scenario-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-scenario deadline; overruns are recorded as failed with "
        "error_kind=timeout (default: spec's 'scenario_timeout' key)",
    )
    crun.add_argument(
        "--store-dir",
        default=None,
        help="shared artifact store root layered over the local cache "
        "(default $ELASTISIM_STORE_DIR; unset = local cache only)",
    )
    crun.add_argument(
        "--queue-dir",
        default=None,
        help="queue directory for --executor queue-worker "
        "(default: a fresh temporary directory)",
    )
    crun.add_argument(
        "--queue-workers",
        type=int,
        default=None,
        metavar="N",
        help="local worker processes spawned for --executor queue-worker "
        "(0 = rely on externally started workers; default --workers)",
    )
    crun.add_argument(
        "--lease",
        type=float,
        default=None,
        metavar="SECONDS",
        help="queue claim lease before a silent worker is presumed dead",
    )
    crun.add_argument(
        "--fingerprints",
        default=None,
        metavar="PATH",
        help="write {scenario name: result fingerprint} JSON here "
        "(byte-identical across executors; CI diffs these)",
    )
    crun.add_argument(
        "--warm-start",
        action="store_true",
        help="serial in-process mode where grid scenarios sharing a "
        "workload prefix reuse one snapshotted base run and replay only "
        "their suffix (results stay byte-identical; see docs/REPLAY.md)",
    )

    cworker = csub.add_parser(
        "worker", help="serve scenarios from a shared campaign queue"
    )
    cworker.add_argument(
        "--queue-dir", required=True, help="queue directory to attach to"
    )
    cworker.add_argument(
        "--worker-id", default=None, help="stable worker name (default: generated)"
    )
    cworker.add_argument(
        "--lease",
        type=float,
        default=None,
        metavar="SECONDS",
        help="claim lease override (default: the queue manifest's)",
    )
    cworker.add_argument(
        "--poll",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="idle poll interval (default 0.2)",
    )
    cworker.add_argument(
        "--max-tasks",
        type=int,
        default=None,
        help="exit after executing this many scenarios",
    )
    cworker.add_argument(
        "--exit-when-idle",
        action="store_true",
        help="exit when nothing is claimable instead of waiting for close",
    )
    cworker.add_argument(
        "--wait-for-queue",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="wait this long for the queue manifest to appear (default 60)",
    )
    cworker.add_argument(
        "--quiet", action="store_true", help="suppress per-task progress lines"
    )

    caggregate = csub.add_parser(
        "aggregate",
        help="fold JSONL result increments into streaming statistics",
    )
    caggregate.add_argument(
        "paths",
        nargs="+",
        help="JSONL shards, directories of shards, or queue directories",
    )
    caggregate.add_argument(
        "--output", default=None, metavar="PATH", help="write the aggregate JSON here"
    )
    caggregate.add_argument(
        "--compression",
        type=int,
        default=None,
        metavar="DELTA",
        help="quantile sketch resolution (default 100)",
    )

    creport = csub.add_parser(
        "report",
        help="fold scenario records into grouped study tables (markdown + JSON)",
    )
    creport.add_argument(
        "paths",
        nargs="+",
        help="scenarios.jsonl files, campaign result directories, or shards",
    )
    creport.add_argument(
        "--output-dir",
        default=None,
        metavar="DIR",
        help="write report.json + report.md here (default: print markdown only)",
    )
    creport.add_argument(
        "--group-by",
        default=None,
        metavar="KEYS",
        help="comma-separated params keys to group rows by "
        "(default: every grid coordinate)",
    )
    creport.add_argument(
        "--metric",
        action="append",
        default=None,
        metavar="NAME",
        help="summary metrics to tabulate (repeatable; default: study metrics)",
    )
    creport.add_argument(
        "--title", default="Campaign report", help="markdown report title"
    )

    ccompare = csub.add_parser(
        "compare", help="diff a campaign/bench report against a baseline"
    )
    # Delegated wholesale to repro.campaign.compare's own parser.
    ccompare.add_argument("compare_args", nargs=argparse.REMAINDER)

    trace = sub.add_parser(
        "trace", help="record, convert, and check flight-recorder traces"
    )
    tsub = trace.add_subparsers(dest="trace_command", required=True)

    trecord = tsub.add_parser("record", help="run a simulation and write a trace")
    trecord.add_argument("--platform", required=True, help="platform JSON file")
    trecord.add_argument("--workload", required=True, help="workload JSON file")
    trecord.add_argument(
        "--algorithm",
        default="easy",
        help="fcfs | easy | conservative | moldable | malleable",
    )
    trecord.add_argument(
        "--output",
        required=True,
        help="trace path (*.json = Chrome trace-event format, else JSONL)",
    )
    trecord.add_argument(
        "--check",
        action="store_true",
        help="also run the invariant checker on the trace stream",
    )

    tconvert = tsub.add_parser(
        "convert", help="convert a JSONL trace to Chrome trace-event format"
    )
    tconvert.add_argument("input", help="JSONL trace file")
    tconvert.add_argument("output", help="Chrome trace JSON to write")

    tcheck = tsub.add_parser(
        "check", help="run the invariant checker over a recorded JSONL trace"
    )
    tcheck.add_argument("input", help="JSONL trace file")
    tcheck.add_argument(
        "--nodes",
        type=int,
        default=None,
        help="machine size for allocation-bound checks (default: unchecked)",
    )

    profile = sub.add_parser(
        "profile", help="profile the engine's hot paths on a reference scenario"
    )
    profile.add_argument("--jobs", type=int, default=200, help="workload size")
    profile.add_argument("--nodes", type=int, default=128, help="machine size")
    profile.add_argument(
        "--algorithm",
        default="easy",
        help="fcfs | easy | conservative | moldable | malleable",
    )
    profile.add_argument("--seed", type=int, default=3, help="workload seed")
    profile.add_argument(
        "--output", default=None, metavar="PATH", help="write the profile JSON here"
    )
    profile.add_argument(
        "--cprofile",
        action="store_true",
        help="also collect a cProfile top-functions table",
    )
    profile.add_argument(
        "--tracemalloc",
        action="store_true",
        help="trace allocations (slows the run; wall numbers not comparable)",
    )
    profile.add_argument(
        "--top",
        type=int,
        default=25,
        help="functions to keep in the cProfile table",
    )

    whatif = sub.add_parser(
        "whatif",
        help="incremental what-if replay: edit a scenario, replay only "
        "the divergent suffix from a snapshot (see docs/REPLAY.md)",
    )
    whatif.add_argument("--base", required=True, help="base scenario JSON file")
    whatif.add_argument(
        "--edited",
        default=None,
        help="edited scenario JSON; diffed against the base to find the "
        "divergence and warm-start from the latest safe checkpoint",
    )
    whatif.add_argument(
        "--snapshot-every",
        type=int,
        default=2000,
        metavar="N",
        help="checkpoint cadence of the base run in processed events "
        "(default 2000)",
    )
    whatif.add_argument(
        "--resume-at",
        type=float,
        default=None,
        metavar="FRACTION",
        help="self-test mode: snapshot the base run, resume from the "
        "checkpoint nearest this fraction of processed events, and write "
        "cold_record.json / resumed_record.json for byte comparison",
    )
    whatif.add_argument(
        "--verify",
        action="store_true",
        help="with --edited: also cold-run the edited scenario and fail "
        "unless the warm record is byte-identical",
    )
    whatif.add_argument(
        "--output-dir",
        default=".",
        help="directory for the emitted record files (default: cwd)",
    )

    fuzz = sub.add_parser(
        "fuzz", help="scenario fuzzing with differential/metamorphic oracles"
    )
    fsub = fuzz.add_subparsers(dest="fuzz_command", required=True)

    frun = fsub.add_parser("run", help="fuzz random scenarios through the oracles")
    frun.add_argument("--seed", type=int, default=0, help="base seed of the sweep")
    frun.add_argument("--count", type=int, default=50, help="scenarios per algorithm")
    frun.add_argument(
        "--algorithms",
        default=None,
        help="comma-separated schedulers to pin (default: draw per scenario, "
        "including the adversarial random one)",
    )
    frun.add_argument(
        "--oracles",
        default=None,
        help="comma-separated oracle subset (default: all)",
    )
    frun.add_argument(
        "--max-nodes", type=int, default=None, help="platform size budget"
    )
    frun.add_argument(
        "--max-jobs", type=int, default=None, help="workload size budget"
    )
    frun.add_argument(
        "--max-failures",
        type=int,
        default=5,
        help="stop the sweep after this many failing cases (default 5)",
    )
    frun.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failures without shrinking them",
    )
    frun.add_argument(
        "--output-dir",
        default=None,
        help="write reproducer artifacts for failing cases here",
    )
    frun.add_argument(
        "--report", default=None, help="write the JSON fuzz report here"
    )

    fshrink = fsub.add_parser(
        "shrink", help="minimize a failing scenario or reproducer record"
    )
    fshrink.add_argument("input", help="scenario or reproducer JSON file")
    fshrink.add_argument(
        "--output-dir",
        default=".",
        help="directory for the shrunk reproducer artifacts (default: cwd)",
    )
    fshrink.add_argument(
        "--max-evals",
        type=int,
        default=400,
        help="predicate evaluation budget for the shrinker",
    )
    fshrink.add_argument(
        "--bisect",
        action="store_true",
        help="for crash failures: checkpoint-bisect the run to its "
        "shortest failing suffix and bulk-drop already-finished jobs "
        "before the greedy walk",
    )

    freplay = fsub.add_parser(
        "replay", help="re-check scenario/reproducer JSON files"
    )
    freplay.add_argument("inputs", nargs="+", help="scenario or reproducer files")
    freplay.add_argument(
        "--oracles",
        default=None,
        help="comma-separated oracle subset (default: the record's own, "
        "or all for raw scenarios)",
    )

    sub.add_parser("algorithms", help="list built-in scheduling algorithms")

    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    platform = load_platform(args.platform)
    jobs = load_workload(args.workload)
    failures = None
    if args.mtbf is not None:
        from repro.failures import generate_failures

        horizon = max(j.submit_time for j in jobs) + 10 * max(
            (j.walltime for j in jobs if j.walltime != float("inf")),
            default=86400.0,
        )
        failures = generate_failures(
            num_nodes=platform.num_nodes,
            horizon=horizon,
            mtbf=args.mtbf,
            mean_repair=args.mean_repair,
            seed=args.failure_seed,
        )
        print(f"injecting {len(failures)} node failures (MTBF {args.mtbf:g} s)")
    sim = Simulation(
        platform,
        jobs,
        algorithm=args.algorithm,
        invocation_interval=args.interval,
        failures=failures,
    )
    monitor = sim.run(
        until=args.until, trace=args.trace, check_invariants=args.check_invariants
    )
    if args.trace is not None:
        print(f"trace written to {args.trace}")
    summary = monitor.summary()

    print(f"platform   : {platform.name} ({platform.num_nodes} nodes)")
    print(f"jobs       : {len(jobs)}")
    print(f"algorithm  : {args.algorithm}")
    print("-" * 46)
    for key, value in summary.as_dict().items():
        if isinstance(value, float):
            print(f"{key:24s} {value:16.3f}")
        else:
            print(f"{key:24s} {value:16d}")
    if monitor.power is not None:
        energy = monitor.power.energy_record()
        print(f"{'total_energy_joules':24s} {float(energy['total_joules']):16.3f}")
        print(f"{'max_power_watts':24s} {float(energy['max_power_watts']):16.3f}")
        if energy["corridor_watts"] is not None:
            print(f"{'corridor_watts':24s} {float(energy['corridor_watts']):16.3f}")

    if args.output_dir is not None:
        out = Path(args.output_dir)
        out.mkdir(parents=True, exist_ok=True)
        monitor.write_job_csv(out / "jobs.csv")
        monitor.write_summary_json(out / "summary.json")
        (out / "utilization.json").write_text(
            json.dumps(monitor.utilization_timeline())
        )
        from repro.monitoring import render_gantt

        (out / "gantt.txt").write_text(render_gantt(monitor))
        print(f"results written to {out}/")
    return EXIT_OK


def _cmd_generate(args: argparse.Namespace) -> int:
    spec = WorkloadSpec(
        num_jobs=args.num_jobs,
        mean_interarrival=args.mean_interarrival,
        min_request=args.min_request,
        max_request=args.max_request,
        malleable_fraction=args.malleable_fraction,
        moldable_fraction=args.moldable_fraction,
        evolving_fraction=args.evolving_fraction,
        data_per_node=args.data_per_node,
        node_flops=args.node_flops,
        mean_runtime=args.mean_runtime,
        num_users=args.num_users,
    )
    jobs = generate_workload(spec, seed=args.seed)
    Path(args.output).write_text(json.dumps(workload_to_dict(jobs), indent=2))
    print(f"wrote {len(jobs)} jobs to {args.output}")
    if args.report is not None:
        from repro.workload import format_profile, profile_workload

        profile = profile_workload(jobs, node_flops=args.node_flops)
        print(format_profile(profile, args.report, args.node_flops))
    return EXIT_OK


def _cmd_validate(args: argparse.Namespace) -> int:
    if args.platform is None and args.workload is None:
        print("nothing to validate: pass --platform and/or --workload",
              file=sys.stderr)
        return EXIT_USAGE
    if args.platform is not None:
        platform = load_platform(args.platform)
        print(f"platform OK: {platform.name} ({platform.num_nodes} nodes)")
    if args.workload is not None:
        jobs = load_workload(args.workload)
        print(f"workload OK: {len(jobs)} jobs")
    return EXIT_OK


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    scenarios = load_campaign(args.spec)
    settings = campaign_run_settings(load_campaign_spec(args.spec))
    name = args.name or Path(args.spec).stem
    # ArtifactStore without a shared root behaves exactly like the plain
    # local cache; --store-dir / $ELASTISIM_STORE_DIR arm the shared layer.
    cache = (
        None
        if args.no_cache
        else ArtifactStore(args.cache_dir, shared_root=args.store_dir)
    )
    executor = args.executor or settings.get("executor")
    executor_options: dict = {}
    if executor == "queue-worker":
        queue_dir = args.queue_dir
        if queue_dir is None:
            import tempfile

            queue_dir = tempfile.mkdtemp(prefix=f"elastisim-queue-{name}-")
        executor_options["queue_dir"] = queue_dir
        if args.queue_workers is not None:
            executor_options["workers"] = max(0, args.queue_workers)
        if args.lease is not None:
            executor_options["lease_s"] = args.lease
    runner = CampaignRunner(
        scenarios,
        name=name,
        workers=args.workers,
        cache=cache,
        force=args.force,
        trace_dir=args.trace_dir,
        check_invariants=args.check_invariants,
        executor=executor,
        executor_options=executor_options,
        scenario_timeout=(
            args.scenario_timeout
            if args.scenario_timeout is not None
            else settings.get("scenario_timeout")
        ),
        warm_start=args.warm_start,
    )

    def progress(record: dict) -> None:
        status = record.get("status", "?")
        cached = " (cached)" if record.get("cached") else ""
        line = f"[{status:>6s}] {record['name']}{cached}"
        if status == "failed":
            line += f" - {record.get('error', 'unknown error')}"
        print(line)

    print(f"campaign {name}: {len(scenarios)} scenarios, {runner.workers} workers")
    report = runner.run(progress=None if args.quiet else progress)

    output_dir = Path(args.output_dir or Path("campaign-results") / name)
    files = report.write(output_dir)
    if args.fingerprints is not None:
        fingerprints = {
            record["name"]: result_fingerprint(record) for record in report.records
        }
        path = Path(args.fingerprints)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(fingerprints, sort_keys=True, indent=2) + "\n")
        print(f"fingerprints: {path}")
    print("-" * 46)
    print(
        f"{len(report.ok)}/{len(report.records)} scenarios ok, "
        f"{report.cache_hits} cache hits, {report.executed} executed "
        f"in {report.wall_s:.2f}s on {report.workers} workers "
        f"({report.executor})"
    )
    print(f"report: {files['aggregate']}")
    if report.failed:
        for record in report.failed:
            print(
                f"{record.get('status', 'failed')}: {record['name']}: "
                f"{record.get('error', '?')}",
                file=sys.stderr,
            )
        if any(r.get("status") == "invariant_violation" for r in report.failed):
            return EXIT_REGRESSION
        return EXIT_RUNTIME
    return EXIT_OK


def _cmd_campaign_worker(args: argparse.Namespace) -> int:
    executed = worker_loop(
        args.queue_dir,
        worker_id=args.worker_id,
        lease_s=args.lease,
        poll_s=args.poll,
        max_tasks=args.max_tasks,
        exit_when_idle=args.exit_when_idle,
        wait_for_queue_s=args.wait_for_queue,
        log=None if args.quiet else print,
    )
    print(f"worker done: {executed} scenario(s) executed")
    return EXIT_OK


def _aggregate_shards(paths: List[str]) -> List[Path]:
    """Expand aggregate inputs: files, shard directories, queue directories."""
    shards: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            increments = path / "increments"
            root = increments if increments.is_dir() else path
            shards.extend(sorted(root.glob("*.jsonl")))
        else:
            shards.append(path)
    return shards


def _cmd_campaign_aggregate(args: argparse.Namespace) -> int:
    shards = _aggregate_shards(args.paths)
    if not shards:
        print("nothing to aggregate: no JSONL shards found", file=sys.stderr)
        return EXIT_USAGE
    aggregator = (
        StreamingAggregator(compression=args.compression)
        if args.compression is not None
        else StreamingAggregator()
    )
    folded = aggregator.fold_paths(shards)
    payload = aggregator.as_dict()
    print(
        f"aggregated {folded} record(s) from {len(shards)} shard(s): "
        + ", ".join(f"{k}={v}" for k, v in payload["status"].items())
    )
    for metric, stats in payload["metrics"].items():
        if not stats["count"]:
            continue
        print(
            f"  {metric:24s} n={stats['count']:<6d} mean={stats['mean']:.4g} "
            f"p50={stats['p50']:.4g} p99={stats['p99']:.4g}"
        )
    if args.output is not None:
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
        print(f"aggregate written to {out}")
    return EXIT_OK


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    shards = _aggregate_shards(args.paths)
    if not shards:
        print("nothing to report: no JSONL records found", file=sys.stderr)
        return EXIT_USAGE
    group_by = (
        [key.strip() for key in args.group_by.split(",") if key.strip()]
        if args.group_by is not None
        else None
    )
    report = CampaignStudyReport(
        group_by=group_by,
        metrics=tuple(args.metric) if args.metric else STUDY_METRICS,
    )
    folded = report.fold_paths(shards)
    if not folded:
        print("nothing to report: shards held no records", file=sys.stderr)
        return EXIT_USAGE
    print(report.to_markdown(title=args.title))
    if args.output_dir is not None:
        paths = report.write(args.output_dir, title=args.title)
        print(f"report written to {paths['json']} and {paths['markdown']}")
    return EXIT_OK


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.tracing import check_trace, convert_jsonl_to_chrome

    if args.trace_command == "record":
        platform = load_platform(args.platform)
        jobs = load_workload(args.workload)
        sim = Simulation(platform, jobs, algorithm=args.algorithm)
        sim.run(trace=args.output, check_invariants=args.check)
        print(
            f"trace written to {args.output} "
            f"({len(sim.tracer.records)} records)"
        )
        if args.check:
            print("invariants OK")
        return EXIT_OK

    if args.trace_command == "convert":
        written = convert_jsonl_to_chrome(args.input, args.output)
        print(f"wrote {written}")
        return EXIT_OK

    # trace check
    violations = check_trace(args.input, num_nodes=args.nodes)
    if violations:
        for violation in violations:
            print(str(violation), file=sys.stderr)
        print(f"{len(violations)} invariant violation(s)", file=sys.stderr)
        return EXIT_REGRESSION
    print("invariants OK")
    return EXIT_OK


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.profiling import format_profile_report, profile_run

    payload = profile_run(
        num_jobs=args.jobs,
        num_nodes=args.nodes,
        algorithm=args.algorithm,
        seed=args.seed,
        cprofile=args.cprofile,
        top=args.top,
        trace_malloc=args.tracemalloc,
    )
    print(format_profile_report(payload))
    if args.output is not None:
        Path(args.output).write_text(json.dumps(payload, indent=2))
        print(f"profile written to {args.output}")
    return EXIT_OK


def _split_csv(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def _cmd_whatif(args: argparse.Namespace) -> int:
    from repro.replay import run_with_snapshots, whatif

    base = json.loads(Path(args.base).read_text())
    output_dir = Path(args.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)

    def dump(record: dict, name: str) -> Path:
        path = output_dir / name
        path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        return path

    if args.resume_at is not None:
        if not 0.0 < args.resume_at < 1.0:
            print("--resume-at must be a fraction in (0, 1)", file=sys.stderr)
            return EXIT_USAGE
        cold, snapshots = run_with_snapshots(base, args.snapshot_every)
        if not snapshots:
            print(
                "run finished before the first checkpoint; lower "
                "--snapshot-every",
                file=sys.stderr,
            )
            return EXIT_USAGE
        total = cold["processed_events"]
        target = args.resume_at * total
        snap = min(snapshots, key=lambda s: abs(s.processed_events - target))
        resumed_sim = Simulation.resume(snap)
        resumed = resumed_sim.run().run_record()
        resumed["invocations"] = resumed_sim.batch.invocations
        cold_path = dump(cold, "cold_record.json")
        resumed_path = dump(resumed, "resumed_record.json")
        identical = json.dumps(cold, sort_keys=True) == json.dumps(
            resumed, sort_keys=True
        )
        print(
            f"resumed from checkpoint at t={snap.time:g} "
            f"({snap.processed_events}/{total} events, "
            f"{len(snapshots)} checkpoints)"
        )
        print(f"  cold:    {cold_path}")
        print(f"  resumed: {resumed_path}")
        print(f"records byte-identical: {identical}")
        return EXIT_OK if identical else EXIT_REGRESSION

    if args.edited is None:
        print("provide --edited (replay an edit) or --resume-at (self-test)",
              file=sys.stderr)
        return EXIT_USAGE
    edited = json.loads(Path(args.edited).read_text())
    result = whatif(base, edited, snapshot_every=args.snapshot_every)
    record_path = dump(result.record, "whatif_record.json")
    if result.warm:
        print(
            f"warm replay from checkpoint at t={result.snapshot_time:g}: "
            f"replayed {result.events_replayed} of {result.events_total} "
            f"events ({result.events_saved} saved)"
        )
    else:
        print(f"cold run ({result.reason})")
    print(f"record: {record_path}")
    if args.verify:
        from repro.batch import Simulation as _Sim

        sim = _Sim.from_spec(edited)
        reference = sim.run(until=edited.get("sim", {}).get("until")).run_record()
        reference["invocations"] = sim.batch.invocations
        identical = json.dumps(reference, sort_keys=True) == json.dumps(
            result.record, sort_keys=True
        )
        print(f"verified against cold run: byte-identical={identical}")
        if not identical:
            dump(reference, "cold_record.json")
            return EXIT_REGRESSION
    return EXIT_OK


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.fuzz import (
        ORACLES,
        fuzz_run,
        replay_scenario,
        shrink_failure,
        write_reproducer,
    )
    from repro.fuzz.generate import DEFAULT_BUDGET

    if args.fuzz_command == "replay":
        failed = 0
        for path in args.inputs:
            failures = replay_scenario(path, oracles=_split_csv(args.oracles))
            if failures:
                failed += 1
                for failure in failures:
                    print(f"{path}: {failure}", file=sys.stderr)
            else:
                print(f"{path}: OK")
        if failed:
            print(f"{failed}/{len(args.inputs)} reproducer(s) failing",
                  file=sys.stderr)
            return EXIT_REGRESSION
        return EXIT_OK

    if args.fuzz_command == "shrink":
        data = json.loads(Path(args.input).read_text())
        scenario = data.get("scenario", data)
        oracles = _split_csv(getattr(args, "oracles", None)) or data.get("oracles")
        failures = replay_scenario(scenario, oracles=oracles)
        if not failures:
            print("scenario passes all oracles; nothing to shrink",
                  file=sys.stderr)
            return EXIT_USAGE
        from repro.fuzz import FuzzFailure

        case = FuzzFailure(
            seed=scenario.get("seed", 0),
            algorithm=scenario.get("algorithm", "easy"),
            scenario=scenario,
            failures=failures,
        )
        small, evals = shrink_failure(
            case, max_evals=args.max_evals, bisect=args.bisect
        )
        small_failures = replay_scenario(
            small, oracles=[f.oracle for f in failures if f.oracle in ORACLES]
        )
        paths = write_reproducer(
            small, small_failures or failures, args.output_dir
        )
        jobs = len(small["workload"]["inline"]["jobs"])
        nodes = small["platform"]["nodes"]["count"]
        print(
            f"shrunk to {jobs} job(s) on {nodes} node(s) "
            f"after {evals} predicate evaluation(s)"
        )
        for kind, path in paths.items():
            print(f"  {kind}: {path}")
        return EXIT_REGRESSION

    # fuzz run
    budget = DEFAULT_BUDGET
    overrides = {}
    if args.max_nodes is not None:
        overrides["max_nodes"] = args.max_nodes
    if args.max_jobs is not None:
        overrides["max_jobs"] = args.max_jobs
    if overrides:
        budget = dataclasses.replace(budget, **overrides)
    report = fuzz_run(
        args.seed,
        args.count,
        algorithms=_split_csv(args.algorithms),
        oracles=_split_csv(args.oracles),
        budget=budget,
        max_failures=args.max_failures,
    )
    print(
        f"fuzz: {report.cases} case(s), base seed {report.base_seed}, "
        f"oracles: {', '.join(report.oracles)}"
    )
    if args.report is not None:
        report_path = Path(args.report)
        report_path.parent.mkdir(parents=True, exist_ok=True)
        report_path.write_text(
            json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"report written to {args.report}")
    if report.ok:
        print("all oracles passed")
        return EXIT_OK
    for case in report.failures:
        print(
            f"FAIL seed={case.seed} algorithm={case.algorithm}",
            file=sys.stderr,
        )
        for failure in case.failures:
            print(f"  {failure}", file=sys.stderr)
    if args.output_dir is not None:
        for case in report.failures:
            scenario, failures = case.scenario, case.failures
            if not args.no_shrink:
                scenario, _ = shrink_failure(case)
                failures = replay_scenario(
                    scenario,
                    oracles=[f.oracle for f in case.failures
                             if f.oracle in ORACLES],
                ) or case.failures
            paths = write_reproducer(
                scenario,
                failures,
                args.output_dir,
                stem=f"fuzz-{case.seed}-{case.algorithm.replace(':', '-')}",
            )
            print(f"reproducer: {paths['record']}", file=sys.stderr)
    print(f"{len(report.failures)} failing case(s)", file=sys.stderr)
    return EXIT_REGRESSION


def _cmd_algorithms() -> int:
    from repro.scheduler.algorithms import _REGISTRY

    for name, cls in sorted(_REGISTRY.items()):
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        print(f"{name:14s} {doc}")
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "validate":
            return _cmd_validate(args)
        if args.command == "campaign":
            if args.campaign_command == "compare":
                return campaign_compare.main(args.compare_args)
            if args.campaign_command == "worker":
                return _cmd_campaign_worker(args)
            if args.campaign_command == "aggregate":
                return _cmd_campaign_aggregate(args)
            if args.campaign_command == "report":
                return _cmd_campaign_report(args)
            return _cmd_campaign_run(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "profile":
            return _cmd_profile(args)
        if args.command == "whatif":
            return _cmd_whatif(args)
        if args.command == "fuzz":
            return _cmd_fuzz(args)
        if args.command == "algorithms":
            return _cmd_algorithms()
    except InvariantViolation as exc:
        print(f"invariant violation: {exc}", file=sys.stderr)
        for violation in exc.violations:
            print(f"  {violation}", file=sys.stderr)
        return EXIT_REGRESSION
    except (PlatformError, WorkloadError, CampaignError, TraceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_INPUT
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_INPUT
    except SchedulerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ALGORITHM
    except BatchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_RUNTIME
    except Exception as exc:  # noqa: BLE001 - last-resort traceback shield
        print(f"internal error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_INTERNAL
    return EXIT_USAGE  # pragma: no cover - unreachable


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
