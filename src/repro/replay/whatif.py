"""Incremental what-if replay: edit a scenario, replay only the suffix.

A what-if run answers "what changes if I tweak the workload?" without
paying for the shared prefix again.  The edited spec is diffed against
the base spec per job; the earliest submit time touched by the edit is
the *divergence time* — everything the base run did strictly before it
is identical in the edited run.  The latest snapshot taken before the
divergence is then *spliced*: the edited spec is substituted, the
submit timers of removed/added/retimed jobs are surgically dropped,
retimed, or inserted into the captured event queue (using fractional
ranks between existing entries, so relative processing order matches
the cold edited run exactly), and the result is restored and run to
completion.  The record that comes out is byte-identical to a cold run
of the edited spec.

Eligibility is deliberately strict — anything the diff cannot prove
safe falls back to a cold run, which is always correct, just slower:

- only ``workload.inline.jobs`` may differ (any other spec difference,
  including the application library, is ineligible);
- every touched submit time (old and new) must lie strictly after the
  snapshot time — i.e. all affected jobs are still unsubmitted;
- jobs common to both specs must appear in the same relative order
  (submit-timer creation order breaks simultaneous-submit ties).

:class:`WhatIfSession` builds on this for campaign warm-starts: grid
scenarios that share everything but their inline jobs reuse one
snapshotted base run.
"""

from __future__ import annotations

import json
from copy import deepcopy
from dataclasses import dataclass, field
from math import inf
from typing import Any, Dict, List, Optional, Tuple

from repro.des.events import NORMAL
from repro.replay.restore import restore_simulation
from repro.replay.snapshot import ReplayError, Snapshot

#: Default snapshot cadence (processed events) for base runs.
DEFAULT_SNAPSHOT_EVERY = 2000


def run_with_snapshots(
    spec: dict,
    snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
    snapshot_callback=None,
) -> Tuple[dict, List[Snapshot]]:
    """Cold-run ``spec`` to completion, collecting periodic snapshots.

    Returns ``(run_record, snapshots)``.
    """
    from repro.batch import Simulation

    sim = Simulation.from_spec(spec)
    monitor = sim.run(
        snapshot_every=snapshot_every, snapshot_callback=snapshot_callback
    )
    record = monitor.run_record()
    record["invocations"] = sim.batch.invocations
    return record, list(sim.snapshots)


def _inline_jobs(spec: dict) -> Optional[List[dict]]:
    """The inline job list of ``spec``, or None if the workload is not inline."""
    workload = spec.get("workload")
    if not isinstance(workload, dict):
        return None
    inline = workload.get("inline")
    if not isinstance(inline, dict):
        return None
    jobs = inline.get("jobs")
    if not isinstance(jobs, list):
        return None
    return jobs


def _job_map(jobs: List[dict]) -> Tuple[List[Any], Dict[Any, dict]]:
    """Jobs keyed by effective jid (explicit ``id`` or 1-based position).

    The same default the workload loader applies, so the diff keys line
    up with the jids the simulation will actually assign.
    """
    order: List[Any] = []
    by_jid: Dict[Any, dict] = {}
    for index, job in enumerate(jobs):
        jid = job.get("id", index + 1)
        if jid in by_jid:
            raise ReplayError(f"duplicate job id {jid!r} in workload")
        order.append(jid)
        by_jid[jid] = job
    return order, by_jid


def _strippable(spec: dict) -> dict:
    """``spec`` minus cosmetic keys and the inline job list — the part
    that must match exactly for two scenarios to be warm-comparable."""
    doc = {k: v for k, v in spec.items() if k not in ("name", "params", "workload")}
    workload = spec.get("workload")
    if isinstance(workload, dict):
        # The workload's own "name" is a label, not content — campaign
        # variants keep distinct names while sharing a warm-start base.
        wl = {k: v for k, v in workload.items() if k not in ("inline", "name")}
        inline = workload.get("inline")
        if isinstance(inline, dict):
            wl["inline"] = {k: v for k, v in inline.items() if k != "jobs"}
        doc["workload"] = wl
    return doc


def diff_workloads(base_spec: dict, edited_spec: dict) -> Optional[dict]:
    """Per-job diff of two scenario specs, or None when not warm-comparable.

    Comparable means: both workloads are inline, everything outside the
    inline job list (platform, algorithm, sim, seed, applications — all
    but the cosmetic ``name``/``params``) is identical, and jobs common
    to both specs keep their relative order.  The returned dict has
    ``added`` / ``removed`` / ``modified`` jid lists and
    ``divergence_time`` — the earliest submit time (old or new) touched
    by the edit, ``inf`` when the specs are equivalent.
    """
    base_jobs = _inline_jobs(base_spec)
    edit_jobs = _inline_jobs(edited_spec)
    if base_jobs is None or edit_jobs is None:
        return None
    if _strippable(base_spec) != _strippable(edited_spec):
        return None
    base_order, base_map = _job_map(base_jobs)
    edit_order, edit_map = _job_map(edit_jobs)
    common = set(base_map) & set(edit_map)
    if [j for j in base_order if j in common] != [j for j in edit_order if j in common]:
        return None  # reordering common jobs would reorder their submit ties

    added = [jid for jid in edit_order if jid not in base_map]
    removed = [jid for jid in base_order if jid not in edit_map]
    modified = [
        jid for jid in edit_order if jid in base_map and base_map[jid] != edit_map[jid]
    ]

    times: List[float] = []
    for jid in added:
        times.append(float(edit_map[jid].get("submit_time", 0.0)))
    for jid in removed:
        times.append(float(base_map[jid].get("submit_time", 0.0)))
    for jid in modified:
        times.append(float(base_map[jid].get("submit_time", 0.0)))
        times.append(float(edit_map[jid].get("submit_time", 0.0)))
    return {
        "added": added,
        "removed": removed,
        "modified": modified,
        "divergence_time": min(times) if times else inf,
    }


def _as_rank(rank: Any) -> list:
    """Normalize a queue-entry rank (int or tuple) to list form."""
    return list(rank) if isinstance(rank, (list, tuple)) else [rank]


def splice_snapshot(snapshot: Snapshot, edited_spec: dict, diff: dict) -> Snapshot:
    """A copy of ``snapshot`` edited to continue as the edited scenario.

    Assumes eligibility (every touched submit time strictly after the
    snapshot time) — verified here as a hard error, since violating it
    silently corrupts the replay.  The splice touches four things: the
    embedded spec, the pending submit-timer records, the captured event
    queue, and the processed-event counter (one submitter bootstrap
    event per job added or removed at time zero).
    """
    changed = set(diff["added"]) | set(diff["removed"]) | set(diff["modified"])
    if snapshot.time >= diff["divergence_time"]:
        raise ReplayError(
            f"snapshot at t={snapshot.time:g} is not before the divergence "
            f"at t={diff['divergence_time']:g}"
        )
    # Shrinking the job list moves the finished-count finish line: if every
    # surviving job had already finished by this snapshot, the edited cold
    # run ended *before* it (all_done fires at the last common finish), so
    # the boundary does not exist in the edited timeline.
    finished = snapshot.state["batch"]["finished_count"]
    num_edited = len(_inline_jobs(edited_spec))
    if finished >= num_edited:
        raise ReplayError(
            f"snapshot has {finished} finished jobs but the edited workload "
            f"only has {num_edited}; the edited run ends before this boundary"
        )

    doc = deepcopy(snapshot.to_dict())
    state = doc["state"]
    env_state = state["env"]
    batch_state = state["batch"]
    edit_order, edit_map = _job_map(_inline_jobs(edited_spec))

    # Jobs touched by the edit must still be pristine: pending in the
    # captured run, so a fresh job built from the edited spec needs no
    # state overlay at all.  Drop their records (and removed jobs').
    pending = {rec["jid"] for rec in batch_state["submitters"]}
    for jid in diff["removed"] + diff["modified"]:
        if jid not in pending:
            raise ReplayError(
                f"job {jid} was already submitted at the snapshot boundary; "
                "the edit is not warm-eligible"
            )
    state["jobs"] = [rec for rec in state["jobs"] if rec["jid"] not in changed]

    # Submit entries: drop removed, retime modified (rank keeps the
    # original creation order, which the edit does not change), insert
    # added between the ranks of their list neighbours.
    removed_sids = {f"submit.{jid}" for jid in diff["removed"]}
    modified_times = {
        f"submit.{jid}": float(edit_map[jid].get("submit_time", 0.0))
        for jid in diff["modified"]
    }
    queue = []
    dropped = 0
    pending_ranks: Dict[Any, list] = {}
    for time, priority, rank, sid in env_state["queue"]:
        if sid in removed_sids:
            dropped += 1
            continue
        if sid in modified_times:
            time = modified_times[sid]
        if sid.startswith("submit."):
            pending_ranks[sid[len("submit."):]] = _as_rank(rank)
        queue.append([time, priority, rank, sid])

    submitters = [
        rec for rec in batch_state["submitters"] if rec["jid"] not in changed
    ]
    for rec in batch_state["submitters"]:
        if rec["jid"] in diff["modified"]:
            submitters.append(
                {
                    "jid": rec["jid"],
                    "sid": rec["sid"],
                    "delay": float(edit_map[rec["jid"]].get("submit_time", 0.0)),
                }
            )

    added_set = set(diff["added"])
    inserted = 0
    prev_rank: Optional[list] = None  # rank of the nearest preceding pending job
    for jid in edit_order:
        key = str(jid)
        if jid in added_set:
            rank = (prev_rank + [1, 1]) if prev_rank is not None else [-1, 1, 1]
            submit_time = float(edit_map[jid].get("submit_time", 0.0))
            sid = f"submit.{jid}"
            queue.append([submit_time, NORMAL, rank, sid])
            submitters.append({"jid": jid, "sid": sid, "delay": submit_time})
            pending_ranks[key] = rank
            inserted += 1
            prev_rank = rank
        elif key in pending_ranks:
            prev_rank = pending_ranks[key]

    submitters.sort(key=lambda rec: str(rec["jid"]))
    env_state["queue"] = queue
    batch_state["submitters"] = submitters
    shift = inserted - dropped
    env_state["processed_events"] += shift
    doc["processed_events"] += shift
    doc["spec"] = deepcopy(edited_spec)
    return Snapshot.from_dict(doc)


@dataclass
class WhatIfResult:
    """Outcome of :func:`whatif` (or one :class:`WhatIfSession` run)."""

    #: ``monitor.run_record()`` of the edited scenario — byte-identical
    #: to a cold run whether the warm path was taken or not.
    record: dict
    #: True when the run was restored from a snapshot (suffix replay).
    warm: bool
    #: Why the cold path was taken (None when warm).
    reason: Optional[str] = None
    #: Simulated time / processed-event count of the restored snapshot.
    snapshot_time: Optional[float] = None
    snapshot_events: Optional[int] = None
    #: Events actually replayed vs the edited run's total.
    events_replayed: Optional[int] = None
    events_total: Optional[int] = None
    #: The workload diff (None when the specs were not comparable).
    diff: Optional[dict] = None

    @property
    def events_saved(self) -> int:
        """Events skipped by the warm start (0 for cold runs)."""
        if not self.warm or self.events_total is None:
            return 0
        return self.events_total - (self.events_replayed or 0)


def _cold_record(spec: dict) -> Tuple[dict, int]:
    from repro.batch import Simulation

    sim = Simulation.from_spec(spec)
    monitor = sim.run(until=spec.get("sim", {}).get("until"))
    record = monitor.run_record()
    record["invocations"] = sim.batch.invocations
    return record, sim.env.processed_events


def whatif(
    base_spec: dict,
    edited_spec: dict,
    *,
    snapshots: Optional[List[Snapshot]] = None,
    snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
) -> WhatIfResult:
    """Run the edited scenario, reusing the base run's prefix when safe.

    ``snapshots`` are checkpoints from a prior base run
    (:func:`run_with_snapshots`); when omitted, the base is cold-run
    here first.  Falls back to a full cold run of ``edited_spec``
    whenever the edit is not provably prefix-preserving — the result
    record is byte-identical either way.
    """
    diff = diff_workloads(base_spec, edited_spec)
    if snapshots is None and diff is not None:
        _, snapshots = run_with_snapshots(base_spec, snapshot_every)

    reason = None
    if diff is None:
        reason = "specs differ outside the inline job list"
    else:
        num_edited = len(_inline_jobs(edited_spec))
        eligible = [
            s
            for s in snapshots
            if s.time < diff["divergence_time"]
            and s.state["batch"]["finished_count"] < num_edited
        ]
        if not eligible:
            reason = (
                f"no snapshot before the divergence at "
                f"t={diff['divergence_time']:g}"
            )
    if reason is not None:
        record, _ = _cold_record(edited_spec)
        return WhatIfResult(record=record, warm=False, reason=reason, diff=diff)

    snap = max(eligible, key=lambda s: s.processed_events)
    try:
        spliced = splice_snapshot(snap, edited_spec, diff)
        sim = restore_simulation(spliced)
    except ReplayError as exc:
        record, _ = _cold_record(edited_spec)
        return WhatIfResult(
            record=record, warm=False, reason=f"splice failed: {exc}", diff=diff
        )
    monitor = sim.run()
    total = sim.env.processed_events
    record = monitor.run_record()
    record["invocations"] = sim.batch.invocations
    return WhatIfResult(
        record=record,
        warm=True,
        snapshot_time=snap.time,
        snapshot_events=snap.processed_events,
        events_replayed=total - spliced.processed_events,
        events_total=total,
        diff=diff,
    )


class WhatIfSession:
    """Warm-start cache for scenario grids sharing a workload prefix.

    The first scenario of each compatibility group (same platform,
    algorithm, sim block, seed, engine pins — everything but the inline
    jobs) is cold-run with periodic snapshots; later members warm-start
    from the latest safe checkpoint via :func:`whatif`.  Scenarios that
    cannot participate (non-inline workloads, an explicit ``sim.until``)
    are simply cold-run.
    """

    def __init__(self, snapshot_every: int = DEFAULT_SNAPSHOT_EVERY) -> None:
        self.snapshot_every = snapshot_every
        self._bases: Dict[str, Tuple[dict, List[Snapshot]]] = {}
        self.stats = {"cold": 0, "warm": 0, "events_saved": 0}

    def compatibility_key(self, spec: dict) -> Optional[str]:
        """Stable key of everything warm-starts must hold fixed, or None
        when the scenario cannot warm-start at all."""
        if _inline_jobs(spec) is None:
            return None
        if spec.get("sim", {}).get("until") is not None:
            return None  # snapshot runs must run to completion
        try:
            return json.dumps(_strippable(spec), sort_keys=True, default=repr)
        except TypeError:
            return None

    def run(self, spec: dict) -> WhatIfResult:
        """Run one scenario, warm-starting when a compatible base exists."""
        key = self.compatibility_key(spec)
        if key is None:
            record, _ = _cold_record(spec)
            self.stats["cold"] += 1
            return WhatIfResult(
                record=record, warm=False, reason="scenario cannot warm-start"
            )
        entry = self._bases.get(key)
        if entry is None:
            record, snaps = run_with_snapshots(spec, self.snapshot_every)
            total = record.get("processed_events", 0)
            if len(snaps) < 8 and total > 50:
                # Short base run: the configured cadence left too few (or
                # zero) checkpoints for later edits to land after one.
                # Re-running at a finer cadence costs one more short run
                # and pays off across the whole grid.
                finer = max(25, total // 16)
                if finer < self.snapshot_every:
                    record, snaps = run_with_snapshots(spec, finer)
            self._bases[key] = (deepcopy(spec), snaps)
            self.stats["cold"] += 1
            return WhatIfResult(
                record=record, warm=False, reason="base run (snapshots recorded)"
            )
        base_spec, snaps = entry
        result = whatif(base_spec, spec, snapshots=snaps)
        self.stats["warm" if result.warm else "cold"] += 1
        self.stats["events_saved"] += result.events_saved
        return result
