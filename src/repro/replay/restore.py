"""Restore a :class:`~repro.replay.Snapshot` into a live simulation.

The static object graph (platform, base workload, algorithm, batch
wiring) is rebuilt from the embedded scenario spec with
``Simulation.from_spec(..., start_processes=False)``; captured state is
then overlaid module by module, and every suspended process is rebuilt by
*deterministic re-entry*: a purpose-built resume generator is advanced to
its first wait via :meth:`repro.des.Process.reenter`, subscribing to the
same (rebuilt) events the original generator was waiting on.

Re-entry allocates no event ids: timeouts are rebuilt raw (bypassing the
scheduling constructor) and linked into the queue by the environment's
restore, which renumbers all entries canonically.  A resumed run is
therefore byte-identical to the cold run from the boundary onward.
"""

from __future__ import annotations

from math import inf
from typing import Any, List, Optional

from repro.des import Process
from repro.des.events import Event, Timeout
from repro.replay.snapshot import ReplayError, SidRegistry, Snapshot
from repro.sharing import Activity


def rebuild_timeout(env, delay: float, value: Any = None) -> Timeout:
    """A Timeout with the given fields that was *not* scheduled.

    The real constructor calls ``env.schedule`` (burning an event id and
    pushing a fresh queue entry); restored timeouts get their queue entry
    from the environment's snapshot instead.
    """
    timer = Timeout.__new__(Timeout)
    timer.env = env
    timer.callbacks = []
    timer._value = value
    timer._ok = True
    timer._defused = False
    timer.delay = delay
    return timer


def rebuild_finished_activity(env, rec: dict) -> Activity:
    """A placeholder for an activity that completed before the snapshot
    but is still referenced by an executor's all-of wait.

    Behaviorally inert: its done event is already processed (the restored
    condition counts it immediately), and ``model.cancel`` on it no-ops
    because it belongs to no model.
    """
    act = Activity.__new__(Activity)
    act.work = rec["work"]
    act.remaining = 0.0
    act.usages = {}
    act.weight = 1.0
    act.bound = inf
    payload = rec["payload"]
    act.payload = tuple(payload) if isinstance(payload, list) else payload
    act.rate = 0.0
    done = Event(env)
    done._ok = True
    done._value = act
    done.callbacks = None  # processed
    act.done = done
    act.started_at = rec["started_at"]
    act.finished_at = rec["finished_at"]
    act._model = None
    act._seq = rec["seq"]
    return act


def rebuild_processed_event(env) -> Event:
    """A bare already-processed Event (dead parallel-branch placeholder)."""
    event = Event(env)
    event._ok = True
    event._value = None
    event.callbacks = None
    return event


class RestoreContext:
    """Helpers the batch system's ``restore_state`` delegates to."""

    def __init__(self, env, registry: SidRegistry) -> None:
        self.env = env
        self.registry = registry

    def rebuild_timeout(self, sid: str, delay: float) -> Timeout:
        timer = rebuild_timeout(self.env, delay)
        self.registry.claim(sid, timer)
        return timer

    def resolve_executor_wait(self, batch, executor, cursor: dict, prefix: str) -> dict:
        """Turn a captured executor cursor into live wait objects.

        For parallel waits this re-enters the live branch processes (their
        resume generators subscribe to their own rebuilt waits) so the
        parent's all-of can be built over the branch events in task order.
        """
        kind = cursor["wait_kind"]
        if kind == "acts":
            acts = []
            for rec in cursor["outstanding"]:
                if "ref" in rec:
                    acts.append(self.registry.obj_of(rec["ref"]))
                else:
                    acts.append(rebuild_finished_activity(self.env, rec["done"]))
            return {"acts": acts}
        if kind == "delay":
            timer = self.rebuild_timeout(
                cursor["delay"]["sid"], cursor["delay"]["delay"]
            )
            return {"timer": timer}
        if kind == "evolving":
            return {}
        if kind == "parallel":
            from repro.engine import JobExecutor

            job = executor.job
            phase = job.application.phases[cursor["phase_idx"]]
            branch_events: List[Event] = []
            branch_procs: List[Process] = []
            branch_slots: List[tuple] = []
            for k, rec in enumerate(cursor["branches"]):
                if rec["alive"]:
                    branch_exec = JobExecutor(
                        self.env, batch.platform, batch.model, job, batch
                    )
                    branch_cursor = rec["state"]
                    branch_resolved = self.resolve_executor_wait(
                        batch, branch_exec, branch_cursor, f"{prefix}.b{k}"
                    )
                    task = phase.tasks[branch_cursor["task_idx"]]
                    proc = Process.reenter(
                        self.env,
                        branch_exec.resume_branch(branch_cursor, branch_resolved),
                        f"{job.name}/{phase.name}/{task.name}",
                    )
                    branch_events.append(proc)
                    branch_procs.append(proc)
                    branch_slots.append((proc, branch_exec))
                else:
                    event = rebuild_processed_event(self.env)
                    branch_events.append(event)
                    branch_slots.append((event, None))
            return {
                "branch_events": branch_events,
                "branch_procs": branch_procs,
                "branch_slots": branch_slots,
            }
        raise ReplayError(f"unknown wait kind {kind!r} in snapshot")


def restore_simulation(snapshot: Snapshot):
    """Rebuild a live simulation continuing bit-for-bit from ``snapshot``."""
    from repro.batch import Simulation

    sim = Simulation.from_spec(snapshot.spec, start_processes=False)
    batch = sim.batch
    env = sim.env
    state = snapshot.state
    registry = SidRegistry()

    # 1. Jobs — base jobs come from the spec; requeue clones are replayed
    #    through the same clone call the live run used (the source's state
    #    is restored first, so trimmed applications come out identical).
    jobs_by_jid = {job.jid: job for job in batch.jobs}
    nodes = batch.platform.nodes
    for rec in state["jobs"]:
        jid = rec["jid"]
        job = jobs_by_jid.get(jid)
        if job is None:
            source = jobs_by_jid.get(rec.get("source_jid"))
            if source is None:
                raise ReplayError(
                    f"snapshot references job {jid} absent from the spec "
                    "workload and without a requeue source"
                )
            job = source.clone_for_requeue(
                jid,
                submit_time=rec["submit_time"],
                resume=batch.checkpoint_restart,
            )
            batch.jobs.append(job)
            jobs_by_jid[jid] = job
        job.restore_state(rec["state"], nodes)

    # 2. Platform node/storage state (needs restored jobs for assignments).
    batch.platform.restore_state(state["platform"], jobs_by_jid)

    # 3. Fair-share model — claims activity and wake sids.
    resources = batch.platform.shared_resources()
    batch.model.restore_state(state["model"], registry, resources)

    # 4. Batch system — re-enters every process; claims timer sids.
    ctx = RestoreContext(env, registry)
    batch.restore_state(state["batch"], registry, ctx)

    # 5. Environment queue — links every claimed sid back into the heap
    #    and renumbers entries canonically.
    env.restore_state(state["env"], registry)

    # 6. Monitor series and scheduler-internal state.
    batch.monitor.restore_state(state["monitor"], jobs_by_jid)
    batch.algorithm.restore_state(state.get("scheduler"))

    return sim
