"""Snapshot/restore of full simulation state and incremental what-if replay.

Public surface:

- :class:`Snapshot`, :class:`SidRegistry`, :data:`SCHEMA_VERSION` — the
  JSON-safe snapshot document and the capture/restore id registry.
- :func:`capture_snapshot` — snapshot a live simulation at a quiet
  boundary (``Simulation.run(snapshot_every=N)`` drives this).
- :func:`restore_simulation` — rebuild a live simulation that continues
  bit-for-bit (``Simulation.resume`` delegates here).
- :func:`whatif`, :class:`WhatIfSession`, :func:`run_with_snapshots` —
  incremental replay: diff an edited scenario against the base, restore
  the latest checkpoint before the first divergence, replay the suffix.

See docs/REPLAY.md for the snapshot format and the determinism contract.
"""

from repro.replay.capture import capture_snapshot
from repro.replay.restore import RestoreContext, restore_simulation
from repro.replay.snapshot import SCHEMA_VERSION, ReplayError, SidRegistry, Snapshot
from repro.replay.whatif import (
    WhatIfResult,
    WhatIfSession,
    diff_workloads,
    run_with_snapshots,
    whatif,
)

__all__ = [
    "SCHEMA_VERSION",
    "ReplayError",
    "RestoreContext",
    "SidRegistry",
    "Snapshot",
    "WhatIfResult",
    "WhatIfSession",
    "capture_snapshot",
    "diff_workloads",
    "restore_simulation",
    "run_with_snapshots",
    "whatif",
]
