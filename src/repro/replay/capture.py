"""Capture a live simulation into a :class:`~repro.replay.Snapshot`.

Capture is only defined at a *quiet boundary*: the clock sits strictly
before the next queued event, every process is suspended on a future
event, and no kernel-internal work (kill interrupts, scheduler
invocations, fair-share resolves) is in flight.  ``Simulation.run`` with
``snapshot_every=N`` arranges exactly that via the environment's hooked
run loop; calling :func:`capture_snapshot` anywhere else raises.

Capture order matters: the fair-share model claims running activities and
queued wake events first, then the batch system claims its timers and the
executors' waits (which reference activity sids), and only then does the
environment walk its queue — at which point every live entry must have an
owner.
"""

from __future__ import annotations

from repro.replay.snapshot import SCHEMA_VERSION, ReplayError, SidRegistry, Snapshot


def capture_snapshot(sim) -> Snapshot:
    """Snapshot a live :class:`~repro.batch.Simulation` mid-run."""
    if sim.spec is None:
        raise ReplayError(
            "snapshot requires a Simulation built via from_spec (the spec "
            "is embedded so a resume can rebuild the object graph)"
        )
    batch = sim.batch
    env = sim.env
    if sim.tracer is not None or batch.tracer is not None or env.tracer is not None:
        raise ReplayError("cannot snapshot a traced run")

    registry = SidRegistry()
    resources = batch.platform.shared_resources()
    res_index = {res: idx for idx, res in enumerate(resources)}

    state = {}
    # Model first: claims activity and wake sids the executors reference.
    state["model"] = batch.model.capture_state(registry, res_index)
    # Batch next: claims its timers and walks every executor's wait.
    state["batch"] = batch.capture_state(registry)
    # Environment last: every live queue entry must be claimed by now.
    state["env"] = env.capture_state(registry)

    jobs = []
    for job in batch.jobs:
        rec = {"jid": job.jid, "state": job.capture_state()}
        if job.source_jid is not None:
            # Requeue clone: record the lineage so restore can replay the
            # clone call (the trimmed application derives from the source's
            # checkpoint marker, which the source's state carries).
            rec["source_jid"] = job.source_jid
            rec["submit_time"] = job.submit_time
        jobs.append(rec)
    state["jobs"] = jobs
    state["platform"] = batch.platform.capture_state()
    state["monitor"] = batch.monitor.capture_state()
    state["scheduler"] = batch.algorithm.capture_state()

    return Snapshot(
        schema_version=SCHEMA_VERSION,
        time=env.now,
        processed_events=env.processed_events,
        spec=sim.spec,
        state=state,
    )
