"""Snapshot container and the state-id registry.

A snapshot is a plain JSON-safe document: the scenario spec the run was
built from plus per-module state dicts (environment, fair-share model,
batch system, platform, jobs, monitor, scheduler).  No live object is
ever pickled — suspended generators are rebuilt at restore time by
deterministic re-entry (see docs/REPLAY.md).

State ids ("sids") are the glue between modules: every event that sits in
the environment's queue (and every shared object referenced across module
boundaries, like running activities) is *claimed* under a stable string id
by the module that owns it.  The environment's queue capture then refers
to entries by sid, and a restore re-links the rebuilt objects through the
same ids.  An unclaimed live queue entry at capture time is a hard error:
it means some state holder has no owner and would be silently dropped.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Union


#: Bump whenever the snapshot document layout changes incompatibly.
SCHEMA_VERSION = 1


class ReplayError(Exception):
    """Raised for snapshots that cannot be captured, loaded, or restored."""


class SidRegistry:
    """Bidirectional object-identity ↔ state-id map used during capture
    and restore.

    Keys objects by ``id()`` — events and activities hash by identity
    anyway, but the registry must never invoke user-visible ``__eq__``.
    """

    def __init__(self) -> None:
        self._by_sid: Dict[str, Any] = {}
        self._by_obj: Dict[int, str] = {}

    def claim(self, sid: str, obj: Any) -> None:
        """Register ``obj`` under ``sid``; each side must be fresh."""
        if sid in self._by_sid:
            raise ReplayError(f"duplicate snapshot id {sid!r}")
        if id(obj) in self._by_obj:
            raise ReplayError(
                f"object {obj!r} already claimed as {self._by_obj[id(obj)]!r}, "
                f"cannot also claim it as {sid!r}"
            )
        self._by_sid[sid] = obj
        self._by_obj[id(obj)] = sid

    def sid_of(self, obj: Any) -> Union[str, None]:
        """The sid ``obj`` was claimed under, or None."""
        return self._by_obj.get(id(obj))

    def obj_of(self, sid: str) -> Any:
        """The object claimed under ``sid``; raises if unknown."""
        try:
            return self._by_sid[sid]
        except KeyError:
            raise ReplayError(f"unknown snapshot id {sid!r}") from None

    # The environment's queue restore speaks in terms of events.
    event_of = obj_of

    def __len__(self) -> int:
        return len(self._by_sid)


@dataclass
class Snapshot:
    """A complete, self-describing simulation state at a quiet boundary."""

    schema_version: int
    #: Simulated time of the boundary.
    time: float
    #: Events processed up to (and including) the boundary.
    processed_events: int
    #: The scenario spec the run was built from (``Simulation.from_spec``);
    #: restore rebuilds the static object graph from it and overlays state.
    spec: dict
    #: Per-module state dicts keyed "env" / "model" / "batch" / "platform"
    #: / "jobs" / "monitor" / "scheduler".
    state: dict

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "time": self.time,
            "processed_events": self.processed_events,
            "spec": self.spec,
            "state": self.state,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Snapshot":
        version = doc.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ReplayError(
                f"snapshot schema version {version!r} not supported "
                f"(expected {SCHEMA_VERSION})"
            )
        return cls(
            schema_version=version,
            time=doc["time"],
            processed_events=doc["processed_events"],
            spec=doc["spec"],
            state=doc["state"],
        )

    def save(self, path: Union[str, Path]) -> None:
        """Write the snapshot as JSON (``inf`` round-trips as Infinity)."""
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Snapshot":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def __repr__(self) -> str:
        return (
            f"<Snapshot t={self.time:g} events={self.processed_events} "
            f"schema=v{self.schema_version}>"
        )
