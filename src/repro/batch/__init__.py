"""Batch system: queue management, scheduler invocation, job lifecycle.

:class:`Simulation` is the top-level façade users interact with::

    from repro import Simulation, load_platform, load_workload
    from repro.scheduler import EasyBackfillingScheduler

    sim = Simulation(platform, jobs, algorithm=EasyBackfillingScheduler())
    result = sim.run()
    print(result.summary().as_dict())

Internally the :class:`BatchSystem` owns the job queue, spawns one
:class:`~repro.engine.JobExecutor` process per started job, arms walltime
watchdogs, applies scheduler decisions (start / reconfigure / kill), and
feeds the :class:`~repro.monitoring.Monitor`.
"""

from repro.batch.system import BatchError, BatchSystem, Simulation

__all__ = ["BatchError", "BatchSystem", "Simulation"]
