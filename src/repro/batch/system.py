"""The batch system and the Simulation façade."""

from __future__ import annotations

from math import inf
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.des import Environment, Event, Process, SimulationError
from repro.engine import JobExecutor
from repro.failures import Failure
from repro.job import Job, JobState, ReconfigurationOrder
from repro.monitoring import Monitor
from repro.platform import Node, Platform
from repro.scheduler import Algorithm, Invocation, InvocationType, SchedulerContext, get_algorithm
from repro.sharing import FairShareModel


class BatchError(Exception):
    """Raised for invalid simulation setups or stuck workloads."""


class BatchSystem:
    """Owns the queue, the running set, and all scheduler interactions."""

    def __init__(
        self,
        env: Environment,
        platform: Platform,
        jobs: Sequence[Job],
        algorithm: Algorithm,
        *,
        invocation_interval: Optional[float] = None,
        failures: Optional[Sequence[Failure]] = None,
        requeue_on_failure: bool = False,
        max_requeues: int = 3,
        checkpoint_restart: bool = False,
        start_processes: bool = True,
    ) -> None:
        if not jobs:
            raise BatchError("No jobs to simulate")
        jids = [job.jid for job in jobs]
        if len(set(jids)) != len(jids):
            raise BatchError("Duplicate job ids in workload")
        for job in jobs:
            if job.min_nodes > platform.num_nodes:
                raise BatchError(
                    f"{job.name} needs at least {job.min_nodes} nodes, "
                    f"platform has {platform.num_nodes}"
                )
        if invocation_interval is not None and invocation_interval <= 0:
            raise BatchError("invocation_interval must be > 0")

        self.env = env
        self.platform = platform
        self.algorithm = algorithm
        self.model = FairShareModel(env)
        self.monitor = Monitor(env, platform.num_nodes)
        # Meter energy when the platform declares node draw (no-op and
        # byte-identical output otherwise).
        self.monitor.attach_power(platform)
        #: True when the algorithm overrides the two-level placement hook;
        #: computed once so the per-task fast path is one attribute read.
        self._has_placement = (
            type(algorithm).place_tasks is not Algorithm.place_tasks
        )
        self.invocation_interval = invocation_interval
        #: Resubmit jobs killed by node failures.
        self.requeue_on_failure = requeue_on_failure
        self.max_requeues = max_requeues
        #: Requeued jobs resume from their last scheduling point instead of
        #: restarting from scratch (applications checkpoint at scheduling
        #: points — the instants where their state is consistent).
        self.checkpoint_restart = checkpoint_restart

        self.jobs: List[Job] = sorted(jobs, key=lambda j: (j.submit_time, j.jid))
        #: Pending jobs in submission order.
        self.queue: List[Job] = []
        #: Running jobs in start order.
        self.running: List[Job] = []

        self._procs: Dict[int, Process] = {}
        self._done_events: Dict[int, Event] = {}
        #: Per-job executors of running jobs (snapshot capture walks these).
        self._executors: Dict[int, JobExecutor] = {}
        #: Pending submit timeouts by jid (popped when the submit fires).
        self._submit_timers: Dict[int, Event] = {}
        #: Watchdog walltime timers by jid (popped when the watchdog ends).
        self._watchdog_timers: Dict[int, Event] = {}
        #: Live watchdog processes by jid.
        self._watchdog_procs: Dict[int, Process] = {}
        #: The periodic scheduler's pending timer and process (if enabled).
        self._periodic_timer: Optional[Event] = None
        self._periodic_proc: Optional[Process] = None
        #: Failure-injector bookkeeping by injector index: which wait the
        #: injector is suspended on (0 = pre-failure, 1 = overlap extension,
        #: 2 = downtime before repair), its pending timer, and its process.
        self._failure_stage: Dict[int, int] = {}
        self._failure_timers: Dict[int, Event] = {}
        self._failure_procs: Dict[int, Process] = {}
        #: Jobs with an unsatisfied blocking evolving request.  A dict used
        #: as an insertion-ordered set: iteration order must never depend
        #: on hash seeds or id() values, or snapshot-resumed runs diverge.
        self._waiting_evolving: Dict[Job, None] = {}
        #: Jobs with a kill interrupt queued but not yet delivered.
        self._kill_pending: set[int] = set()
        self._finished_count = 0
        #: Fires when every job has finished; Simulation.run waits on it.
        self.all_done: Event = env.event()
        #: Total scheduler invocations (diagnostics / E5).
        self.invocations = 0
        #: Optional flight recorder (attached by ``Simulation.run(trace=...)``).
        #: Every emission site guards with ``is not None`` so the disabled
        #: path costs one attribute check.
        self.tracer = None
        #: Decision outcomes of the scheduler invocation currently in
        #: flight (tracing only; None outside a traced invocation).
        self._decision_log: Optional[List[str]] = None

        self.failures: List[Failure] = list(failures or ())
        for failure in self.failures:
            if not 0 <= failure.node_index < platform.num_nodes:
                raise BatchError(
                    f"Failure targets node {failure.node_index}, platform "
                    f"has {platform.num_nodes}"
                )
        if not start_processes:
            return  # snapshot restore: processes are rebuilt by re-entry
        for job in self.jobs:
            env.process(self._submitter(job), name=f"submit-{job.name}")
        if invocation_interval is not None:
            self._periodic_proc = env.process(
                self._periodic(), name="periodic-scheduler"
            )
        for idx, failure in enumerate(self.failures):
            self._failure_procs[idx] = env.process(
                self._failure_injector(idx, failure),
                name=f"failure-n{failure.node_index}",
            )

    # -- processes ----------------------------------------------------------

    def _submitter(self, job: Job):
        delay = job.submit_time - self.env.now
        if delay > 0:
            timer = self.env.timeout(delay)
            self._submit_timers[job.jid] = timer
            yield from self._submit_after(job, timer)
            return
        self._submit_now(job)
        return
        yield  # pragma: no cover - generator marker

    def _submit_after(self, job: Job, timer: Event):
        """Submitter tail: also the resume generator for a submitter that a
        snapshot caught waiting on its submit timeout."""
        yield timer
        self._submit_timers.pop(job.jid, None)
        self._submit_now(job)

    def _submit_now(self, job: Job) -> None:
        self.queue.append(job)
        self.monitor.on_submit(job)
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                "job.submit",
                "batch",
                job.name,
                self.env.now,
                jid=job.jid,
                user=job.user,
                type=job.type.value,
                nodes=job.num_nodes,
                queued=len(self.queue),
            )
        self._invoke(InvocationType.JOB_SUBMIT, job)

    def _periodic(self):
        if self._finished_count >= len(self.jobs):
            return
        timer = self.env.timeout(self.invocation_interval)
        self._periodic_timer = timer
        yield from self._periodic_from(timer)

    def _periodic_from(self, timer: Event):
        """Periodic-scheduler loop from a pending timer: also the resume
        generator when a snapshot caught the loop mid-wait."""
        while True:
            yield timer
            if self._finished_count >= len(self.jobs):
                return
            self._invoke(InvocationType.PERIODIC)
            if self._finished_count >= len(self.jobs):
                return
            timer = self.env.timeout(self.invocation_interval)
            self._periodic_timer = timer

    def _failure_injector(self, idx: int, failure: Failure):
        if failure.time > 0:
            timer = self.env.timeout(failure.time)
            self._failure_stage[idx] = 0
            self._failure_timers[idx] = timer
            yield from self._failure_armed(idx, failure, timer)
            return
        yield from self._failure_body(idx, failure)

    def _failure_armed(self, idx: int, failure: Failure, timer: Event):
        """Stage 0: waiting for the failure instant."""
        yield timer
        yield from self._failure_body(idx, failure)

    def _failure_body(self, idx: int, failure: Failure):
        node = self.platform.nodes[failure.node_index]
        if node.failed:
            # Already down (overlapping trace entries): extend implicitly.
            timer = self.env.timeout(failure.downtime)
            self._failure_stage[idx] = 1
            self._failure_timers[idx] = timer
            yield from self._failure_extend(idx, timer)
            return
        timer = self._fail_node(idx, failure)
        yield from self._failure_downtime(idx, failure, timer)

    def _failure_extend(self, idx: int, timer: Event):
        """Stage 1: riding out an overlapping downtime, nothing to do after."""
        yield timer
        self._failure_done(idx)

    def _failure_downtime(self, idx: int, failure: Failure, timer: Event):
        """Stage 2: the node is down; repair it when the downtime elapses."""
        yield timer
        self._repair_node(idx, failure)

    def _fail_node(self, idx: int, failure: Failure) -> Event:
        """Take the node down and arm the downtime timer (stage 2)."""
        node = self.platform.nodes[failure.node_index]
        node.fail()
        self.monitor.on_node_failure(node.index)
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                "node.fail", f"node:{node.index}", node.name, self.env.now,
                node=node.index,
            )
        victim = node.assigned_job
        if isinstance(victim, Job) and victim.state is JobState.RUNNING:
            self.kill_job(victim, reason="node_failure")
        self._invoke(InvocationType.NODE_FAILURE)
        timer = self.env.timeout(failure.downtime)
        self._failure_stage[idx] = 2
        self._failure_timers[idx] = timer
        return timer

    def _repair_node(self, idx: int, failure: Failure) -> None:
        node = self.platform.nodes[failure.node_index]
        node.repair()
        self.monitor.on_node_repair(node.index)
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                "node.repair", f"node:{node.index}", node.name, self.env.now,
                node=node.index,
            )
        self._failure_done(idx)
        self._invoke(InvocationType.NODE_REPAIR)

    def _failure_done(self, idx: int) -> None:
        self._failure_stage.pop(idx, None)
        self._failure_timers.pop(idx, None)
        self._failure_procs.pop(idx, None)

    def _runner(self, job: Job, executor: JobExecutor):
        outcome = yield from executor.run()
        self._finish_job(job, outcome)

    def _runner_resumed(self, job: Job, executor: JobExecutor, cursor, resolved):
        """Runner body when the executor is rebuilt from a snapshot."""
        outcome = yield from executor.resume_run(cursor, resolved)
        self._finish_job(job, outcome)

    def _watchdog(self, job: Job, proc: Process, done: Event):
        timer = self.env.timeout(job.walltime)
        self._watchdog_timers[job.jid] = timer
        yield from self._watchdog_wait(job, proc, done, timer)

    def _watchdog_wait(self, job: Job, proc: Process, done: Event, timer: Event):
        """Watchdog wait: also the resume generator after a snapshot."""
        yield timer | done
        self._watchdog_timers.pop(job.jid, None)
        self._watchdog_procs.pop(job.jid, None)
        if not done.triggered and proc.is_alive:
            proc.interrupt("walltime")
        else:
            # The job finished first: withdraw the timer so the stale
            # timeout neither drags a run-to-exhaustion ``env.now`` to
            # the walltime expiry nor counts as a processed event.
            timer.cancel()

    # -- scheduler invocation ----------------------------------------------------

    def _invoke(self, type: InvocationType, job: Optional[Job] = None) -> None:
        self.invocations += 1
        invocation = Invocation(type, self.env.now, job)
        tracer = self.tracer
        if tracer is None:
            self.algorithm.schedule(SchedulerContext(self), invocation)
            return
        # Traced invocation: collect decision outcomes (starts, orders,
        # kills, denials) issued while the algorithm runs, then record the
        # invocation with its trigger and everything it decided.
        previous = self._decision_log
        decisions: List[str] = []
        self._decision_log = decisions
        try:
            self.algorithm.schedule(SchedulerContext(self), invocation)
        finally:
            self._decision_log = previous
            tracer.instant(
                "sched.invoke",
                "scheduler",
                type.value,
                self.env.now,
                trigger=type.value,
                jid=job.jid if job is not None else None,
                queued=len(self.queue),
                running=len(self.running),
                decisions=decisions,
            )

    def _log_decision(self, text: str) -> None:
        """Append a decision outcome to the in-flight traced invocation."""
        if self._decision_log is not None:
            self._decision_log.append(text)

    # -- decision handlers (called by SchedulerContext after validation) -----

    def start_job(self, job: Job, nodes: Sequence[Node]) -> None:
        for node in nodes:
            node.allocate(job)
        self.queue.remove(job)
        job.mark_started(nodes, self.env.now)
        self.running.append(job)
        self.monitor.on_start(job)
        self._log_decision(f"start:{job.name}:{len(nodes)}")
        tracer = self.tracer
        if tracer is not None:
            for node in nodes:
                self._trace_node_alloc(tracer, node, job, reserved=False)
            tracer.instant(
                "job.start",
                "batch",
                job.name,
                self.env.now,
                jid=job.jid,
                nodes=[n.index for n in nodes],
                queued=len(self.queue),
                walltime=job.walltime if job.walltime < inf else None,
            )
        self._sync_allocation()

        done = self.env.event()
        self._done_events[job.jid] = done
        executor = JobExecutor(self.env, self.platform, self.model, job, self)
        self._executors[job.jid] = executor
        proc = self.env.process(self._runner(job, executor), name=f"run-{job.name}")
        self._procs[job.jid] = proc
        if job.walltime < inf:
            self._watchdog_procs[job.jid] = self.env.process(
                self._watchdog(job, proc, done), name=f"watchdog-{job.name}"
            )

    def order_reconfiguration(self, job: Job, target: Sequence[Node]) -> None:
        current = {n.index for n in job.assigned_nodes}
        added = [node for node in target if node.index not in current]
        for node in added:
            node.allocate(job)  # reserve additions immediately
        job.pending_reconfiguration = ReconfigurationOrder(target, self.env.now)
        self._log_decision(f"reconfigure:{job.name}:{len(current)}->{len(target)}")
        tracer = self.tracer
        if tracer is not None:
            target_set = {n.index for n in target}
            for node in added:
                self._trace_node_alloc(tracer, node, job, reserved=True)
            tracer.instant(
                "reconf.order",
                "scheduler",
                job.name,
                self.env.now,
                jid=job.jid,
                target=sorted(target_set),
                added=sorted(n.index for n in added),
                removed=sorted(current - target_set),
            )
        self._sync_allocation()
        self._release_evolving_wait(job)

    def deny_evolving_request(self, job: Job) -> None:
        """Explicitly deny a blocking evolving request: the job continues
        with its current allocation instead of waiting for a grant."""
        job.evolving_denied = True
        self._waiting_evolving.pop(job, None)
        self._log_decision(f"deny:{job.name}")
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                "reconf.deny", "scheduler", job.name, self.env.now, jid=job.jid
            )
        self._release_evolving_wait(job)

    def _release_evolving_wait(self, job: Job) -> None:
        self._waiting_evolving.pop(job, None)
        wait = job.evolving_wait_event
        if wait is not None and not wait.triggered:
            wait.succeed()

    def kill_job(self, job: Job, reason: str) -> None:
        if job.state is JobState.PENDING:
            self.queue.remove(job)
            job.mark_killed(self.env.now, reason)
            self.monitor.on_queue_drop(job)
            self._log_decision(f"drop:{job.name}:{reason}")
            tracer = self.tracer
            if tracer is not None:
                tracer.instant(
                    "job.queue_drop",
                    "batch",
                    job.name,
                    self.env.now,
                    jid=job.jid,
                    reason=reason,
                    queued=len(self.queue),
                )
            self._job_accounted()
            return
        if job.jid in self._kill_pending:
            return  # an interrupt is already on its way (same-instant kills)
        proc = self._procs.get(job.jid)
        if proc is not None and proc.is_alive:
            self._kill_pending.add(job.jid)
            self._log_decision(f"kill:{job.name}:{reason}")
            if proc is self.env.active_process:
                # The scheduler is killing the very job whose scheduling
                # point (or evolving request) triggered this invocation —
                # the interrupt would be a self-interrupt, which the DES
                # forbids.  Deliver it from a helper process instead: it
                # runs at the same instant, right after the executor's
                # next yield.
                self.env.process(
                    self._deferred_kill(job, proc, reason),
                    name=f"kill-{job.name}",
                )
            else:
                proc.interrupt(reason)

    def _deferred_kill(self, job: Job, proc, reason: str):
        if proc.is_alive and job.jid in self._kill_pending:
            proc.interrupt(reason)
        return
        yield  # pragma: no cover - generator marker, never reached

    # -- engine callbacks (BatchCallbacks protocol) ----------------------------

    def place_tasks(self, job: Job, task) -> Optional[List[Node]]:
        """Two-level scheduling hook: ask the algorithm to place one task.

        Called by the executor before running each task.  Returns the node
        subset the task should occupy, or None for the default (the job's
        whole allocation).  The algorithm's answer is validated here: it
        must be a non-empty, duplicate-free subset of the job's current
        allocation — the hook places work *within* an allocation, it never
        changes the allocation itself.
        """
        if not self._has_placement:
            return None
        chosen = self.algorithm.place_tasks(job, task, job.assigned_nodes)
        if chosen is None:
            return None
        nodes = list(chosen)
        if not nodes:
            raise BatchError(
                f"{self.algorithm.name}: place_tasks returned an empty "
                f"placement for {job.name}/{task.name}"
            )
        allowed = {id(node) for node in job.assigned_nodes}
        seen: set = set()
        for node in nodes:
            if id(node) not in allowed:
                raise BatchError(
                    f"{self.algorithm.name}: place_tasks placed "
                    f"{job.name}/{task.name} on node {node.name}, which is "
                    "not part of the job's allocation"
                )
            if id(node) in seen:
                raise BatchError(
                    f"{self.algorithm.name}: place_tasks returned node "
                    f"{node.name} twice for {job.name}/{task.name}"
                )
            seen.add(id(node))
        return nodes

    def current_power(self) -> float:
        """Aggregate node draw in watts (0.0 on powerless platforms)."""
        meter = self.monitor.power
        if meter is not None:
            return meter.current_watts
        return self.platform.current_power()

    def on_scheduling_point(self, job: Job) -> None:
        self._invoke(InvocationType.SCHEDULING_POINT, job)

    def on_evolving_request(self, job: Job, desired_nodes: int) -> None:
        # Track the job before invoking: a blocking request that the
        # algorithm cannot satisfy right now is retried when resources
        # free up (completions / committed reconfigurations).
        self._waiting_evolving[job] = None
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                "evolve.request",
                "batch",
                job.name,
                self.env.now,
                jid=job.jid,
                current=len(job.assigned_nodes),
                desired=desired_nodes,
            )
        self._invoke(InvocationType.EVOLVING_REQUEST, job)
        if job.pending_reconfiguration is not None or job.evolving_request is None:
            self._waiting_evolving.pop(job, None)

    def _retry_waiting_evolving(self) -> None:
        for job in sorted(self._waiting_evolving, key=lambda j: j.jid):
            if (
                job.state is not JobState.RUNNING
                or job.evolving_request is None
                or job.pending_reconfiguration is not None
            ):
                self._waiting_evolving.pop(job, None)
                continue
            self._invoke(InvocationType.EVOLVING_REQUEST, job)
            if job.pending_reconfiguration is not None:
                self._waiting_evolving.pop(job, None)

    def commit_reconfiguration(self, job: Job, new_nodes: Sequence[Node]) -> None:
        old_count = len(job.assigned_nodes)
        new_set = {n.index for n in new_nodes}
        tracer = self.tracer
        for node in job.assigned_nodes:
            if node.index not in new_set:
                node.deallocate()
                if tracer is not None:
                    self._trace_node_release(tracer, node, job)
        job.assigned_nodes = list(new_nodes)
        self.monitor.on_reconfigure(job, old_count, len(new_nodes))
        if tracer is not None:
            tracer.instant(
                "reconf.commit",
                "batch",
                job.name,
                self.env.now,
                jid=job.jid,
                nodes=sorted(new_set),
                old=old_count,
                new=len(new_nodes),
            )
        self._sync_allocation()
        self._invoke(InvocationType.RECONFIGURATION, job)
        self._retry_waiting_evolving()

    # -- lifecycle ----------------------------------------------------------------

    def _finish_job(self, job: Job, outcome: str) -> None:
        # Free everything the job holds, including nodes reserved for a
        # never-applied reconfiguration order.
        held = {n.index: n for n in job.assigned_nodes}
        order = job.pending_reconfiguration
        if order is not None:
            for node in order.target:
                held[node.index] = node
            job.pending_reconfiguration = None
        tracer = self.tracer
        for node in held.values():
            if not node.free and node.assigned_job is job:
                node.deallocate()
                if tracer is not None:
                    self._trace_node_release(tracer, node, job)

        self.running.remove(job)
        if outcome == "completed":
            job.mark_completed(self.env.now)
        else:
            job.mark_killed(self.env.now, job.kill_reason or "killed")
        self.monitor.on_end(job)
        if tracer is not None:
            kind = "job.complete" if outcome == "completed" else "job.kill"
            tracer.instant(
                kind,
                "batch",
                job.name,
                self.env.now,
                jid=job.jid,
                reason=job.kill_reason,
                runtime=job.runtime,
            )
        self._sync_allocation()

        done = self._done_events.pop(job.jid, None)
        if done is not None and not done.triggered:
            done.succeed()
        self._procs.pop(job.jid, None)
        self._executors.pop(job.jid, None)
        self._kill_pending.discard(job.jid)
        self._waiting_evolving.pop(job, None)
        job.evolving_wait_event = None

        # Requeue first so the clone raises the completion target before the
        # killed job is accounted (all_done must wait for the retry).
        self._maybe_requeue(job)
        self._job_accounted()
        self._invoke(InvocationType.JOB_COMPLETION, job)
        self._retry_waiting_evolving()

    def _maybe_requeue(self, job: Job) -> bool:
        """Resubmit a killed job as a fresh clone when policy allows.

        Preempted jobs always requeue (preemption is a deferral, not a
        cancellation); failure-killed jobs requeue when
        ``requeue_on_failure`` is set, bounded by ``max_requeues``.  The
        clone joins ``self.jobs``, raising the completion target: the
        campaign is not done until the retry finishes too.
        """
        if job.kill_reason == "preempted":
            pass  # always requeued; priority ordering prevents ping-pong
        elif not self.requeue_on_failure or job.kill_reason != "node_failure":
            return False
        elif job.attempt > self.max_requeues:
            return False
        new_jid = max(j.jid for j in self.jobs) + 1
        clone = job.clone_for_requeue(
            new_jid, submit_time=self.env.now, resume=self.checkpoint_restart
        )
        self.jobs.append(clone)
        self.queue.append(clone)
        self.monitor.on_submit(clone)
        tracer = self.tracer
        if tracer is not None:
            # Mirror _submitter's record: the queue-accounting invariant
            # counts submits from the trace stream, and a requeue clone is
            # a submission like any other.
            tracer.instant(
                "job.submit",
                "batch",
                clone.name,
                self.env.now,
                jid=clone.jid,
                user=clone.user,
                type=clone.type.value,
                nodes=clone.num_nodes,
                queued=len(self.queue),
            )
        self._invoke(InvocationType.JOB_SUBMIT, clone)
        return True

    def _job_accounted(self) -> None:
        self._finished_count += 1
        if self._finished_count >= len(self.jobs) and not self.all_done.triggered:
            self.all_done.succeed()

    def _sync_allocation(self) -> None:
        allocated = self.platform.num_allocated_nodes()
        self.monitor.set_allocated(allocated)
        tracer = self.tracer
        if tracer is not None:
            tracer.instant("alloc.count", "batch", "allocated", self.env.now, n=allocated)

    # -- snapshot / restore --------------------------------------------------

    def capture_state(self, registry) -> dict:
        """Snapshot queue/running membership, counters, and every live
        batch process as (resume generator id, pending timer) pairs.

        Must run at a quiet boundary: no kill interrupts in flight, no
        scheduler invocation on the stack.  Claims all batch-owned queued
        timeouts in ``registry`` so the environment capture can reference
        them; executor capture claims activity waits recursively.
        """
        if self._kill_pending:
            raise RuntimeError(
                f"kill interrupts in flight for jids {sorted(self._kill_pending)}; "
                "not a quiet boundary"
            )
        if self._decision_log is not None:
            raise RuntimeError("scheduler invocation in flight; not a quiet boundary")

        submitters = []
        for jid, timer in sorted(self._submit_timers.items()):
            sid = f"submit.{jid}"
            registry.claim(sid, timer)
            submitters.append({"jid": jid, "sid": sid, "delay": timer.delay})

        periodic = None
        if self._periodic_proc is not None and self._periodic_proc.is_alive:
            sid = "periodic.timer"
            registry.claim(sid, self._periodic_timer)
            periodic = {"sid": sid, "delay": self._periodic_timer.delay}

        failures = []
        for idx in sorted(self._failure_procs):
            proc = self._failure_procs[idx]
            if not proc.is_alive:
                continue
            timer = self._failure_timers[idx]
            sid = f"failure.{idx}.timer"
            registry.claim(sid, timer)
            failures.append(
                {
                    "idx": idx,
                    "stage": self._failure_stage[idx],
                    "sid": sid,
                    "delay": timer.delay,
                }
            )

        watchdogs = []
        for jid, timer in sorted(self._watchdog_timers.items()):
            sid = f"watchdog.{jid}.timer"
            registry.claim(sid, timer)
            watchdogs.append({"jid": jid, "sid": sid, "delay": timer.delay})

        executors = {
            str(jid): self._executors[jid].capture_state(registry, f"exec.{jid}")
            for jid in sorted(self._executors)
        }

        return {
            "queue": [job.jid for job in self.queue],
            "running": [job.jid for job in self.running],
            "finished_count": self._finished_count,
            "invocations": self.invocations,
            "waiting_evolving": [job.jid for job in self._waiting_evolving],
            "submitters": submitters,
            "periodic": periodic,
            "failures": failures,
            "watchdogs": watchdogs,
            "executors": executors,
        }

    def restore_state(self, state: dict, registry, ctx) -> None:
        """Rebuild batch containers and re-enter every live process.

        ``ctx`` is the replay restore helper: ``rebuild_timeout(sid, delay)``
        returns a raw (constructor-bypassing) Timeout claimed under ``sid``,
        and ``resolve_executor_wait(...)`` turns a captured executor cursor
        into the live wait objects its resume generator needs.  Re-entry
        creates no event ids — the environment's queue restore assigns the
        canonical ids afterwards.
        """
        jobs_by_jid = {job.jid: job for job in self.jobs}
        self.queue = [jobs_by_jid[jid] for jid in state["queue"]]
        self.running = [jobs_by_jid[jid] for jid in state["running"]]
        self._finished_count = state["finished_count"]
        self.invocations = state["invocations"]
        self._waiting_evolving = {
            jobs_by_jid[jid]: None for jid in state["waiting_evolving"]
        }

        for rec in state["submitters"]:
            job = jobs_by_jid[rec["jid"]]
            timer = ctx.rebuild_timeout(rec["sid"], rec["delay"])
            self._submit_timers[job.jid] = timer
            Process.reenter(
                self.env, self._submit_after(job, timer), f"submit-{job.name}"
            )

        if state["periodic"] is not None:
            timer = ctx.rebuild_timeout(
                state["periodic"]["sid"], state["periodic"]["delay"]
            )
            self._periodic_timer = timer
            self._periodic_proc = Process.reenter(
                self.env, self._periodic_from(timer), "periodic-scheduler"
            )

        for rec in state["failures"]:
            idx = rec["idx"]
            failure = self.failures[idx]
            timer = ctx.rebuild_timeout(rec["sid"], rec["delay"])
            stage = rec["stage"]
            self._failure_stage[idx] = stage
            self._failure_timers[idx] = timer
            if stage == 0:
                gen = self._failure_armed(idx, failure, timer)
            elif stage == 1:
                gen = self._failure_extend(idx, timer)
            else:
                gen = self._failure_downtime(idx, failure, timer)
            self._failure_procs[idx] = Process.reenter(
                self.env, gen, f"failure-n{failure.node_index}"
            )

        watchdog_recs = {rec["jid"]: rec for rec in state["watchdogs"]}
        for job in self.running:
            cursor = state["executors"][str(job.jid)]
            executor = JobExecutor(self.env, self.platform, self.model, job, self)
            self._executors[job.jid] = executor
            resolved = ctx.resolve_executor_wait(
                self, executor, cursor, f"exec.{job.jid}"
            )
            proc = Process.reenter(
                self.env,
                self._runner_resumed(job, executor, cursor, resolved),
                f"run-{job.name}",
            )
            self._procs[job.jid] = proc
            done = self.env.event()
            self._done_events[job.jid] = done
            rec = watchdog_recs.get(job.jid)
            if rec is not None:
                timer = ctx.rebuild_timeout(rec["sid"], rec["delay"])
                self._watchdog_timers[job.jid] = timer
                self._watchdog_procs[job.jid] = Process.reenter(
                    self.env,
                    self._watchdog_wait(job, proc, done, timer),
                    f"watchdog-{job.name}",
                )

    # -- tracing helpers -----------------------------------------------------

    def _trace_node_alloc(self, tracer, node: Node, job: Job, *, reserved: bool) -> None:
        """Record a node grab: an instant plus the start of a hold span."""
        now = self.env.now
        track = f"node:{node.index}"
        tracer.instant(
            "node.alloc", track, job.name, now,
            node=node.index, jid=job.jid, reserved=reserved,
        )
        tracer.begin(
            ("hold", node.index), "node.hold", track, job.name, now,
            node=node.index, jid=job.jid, reserved=reserved,
        )

    def _trace_node_release(self, tracer, node: Node, job: Job) -> None:
        """Record a node release: an instant plus the end of its hold span."""
        now = self.env.now
        tracer.instant(
            "node.release", f"node:{node.index}", job.name, now,
            node=node.index, jid=job.jid,
        )
        tracer.end(("hold", node.index), now)


class Simulation:
    """Top-level façade: build, run, and collect results.

    Parameters
    ----------
    platform:
        The machine (see :mod:`repro.platform`).
    jobs:
        The workload (see :mod:`repro.workload`).
    algorithm:
        An :class:`~repro.scheduler.Algorithm` instance or a registry name
        ("fcfs", "easy", "conservative", "moldable", "malleable").
    invocation_interval:
        Optional period for time-driven scheduler invocations on top of the
        event-driven ones.
    env:
        Bring-your-own environment (tests, co-simulation); default fresh.
    """

    def __init__(
        self,
        platform: Platform,
        jobs: Sequence[Job],
        algorithm: Union[str, Algorithm] = "easy",
        *,
        invocation_interval: Optional[float] = None,
        failures: Optional[Sequence[Failure]] = None,
        requeue_on_failure: bool = False,
        max_requeues: int = 3,
        checkpoint_restart: bool = False,
        env: Optional[Environment] = None,
        start_processes: bool = True,
    ) -> None:
        self.env = env if env is not None else Environment()
        #: Flight recorder of the last traced :meth:`run` (None otherwise).
        self.tracer = None
        #: Invariant violations found by the last checked :meth:`run`.
        self.violations: List = []
        #: The scenario spec this simulation was built from (set by
        #: :meth:`from_spec`; None for directly-constructed simulations).
        #: Snapshots embed it so a resume can rebuild the object graph.
        self.spec: Optional[dict] = None
        #: Snapshots taken by the last ``run(snapshot_every=...)``.
        self.snapshots: List = []
        if isinstance(algorithm, str):
            algorithm = get_algorithm(algorithm)
        self.batch = BatchSystem(
            self.env,
            platform,
            jobs,
            algorithm,
            invocation_interval=invocation_interval,
            failures=failures,
            requeue_on_failure=requeue_on_failure,
            max_requeues=max_requeues,
            checkpoint_restart=checkpoint_restart,
            start_processes=start_processes,
        )

    @classmethod
    def from_spec(cls, spec: Mapping, *, start_processes: bool = True) -> "Simulation":
        """Build a simulation from a plain-dict scenario spec.

        The worker-safe construction path used by campaign workers
        (:mod:`repro.campaign`): everything crosses the process boundary
        as JSON-compatible data and is materialised here, inside the
        worker — platforms carry node state and must never be shared
        between runs, let alone pickled across processes mid-flight.

        Recognised keys: ``platform`` (a :func:`platform_from_dict` spec),
        ``workload`` (``{"generate": {<WorkloadSpec fields>}}``,
        ``{"file": <path>}``, an explicit inline job list
        ``{"inline": {<workload_from_dict spec>}}``, or an SWF
        trace-conversion block ``{"swf": {<jobs_from_swf_block keys>}}``),
        ``algorithm``,
        ``seed``, and ``sim`` (``invocation_interval``,
        ``requeue_on_failure``, ``max_requeues``, ``checkpoint_restart``,
        and optional ``failures`` — either a synthetic-trace block with
        ``mtbf``/``mean_repair``/``seed`` or an explicit
        ``{"trace": [{"time", "node", "downtime"}, ...]}`` list).  Unknown
        top-level keys (report labels like ``name``/``params``) are ignored.
        """
        from repro.failures import Failure, generate_failures
        from repro.platform import platform_from_dict
        from repro.workload import (
            WorkloadSpec,
            generate_workload,
            load_workload,
            workload_from_dict,
        )

        try:
            platform_spec = dict(spec["platform"])
            workload_spec = dict(spec["workload"])
        except (KeyError, TypeError) as exc:
            raise BatchError(f"scenario spec needs 'platform' and 'workload': {exc}")
        platform = platform_from_dict(platform_spec)

        seed = int(spec.get("seed", 0))
        if "generate" in workload_spec:
            generate = dict(workload_spec["generate"])
            seed = int(generate.pop("seed", seed))
            try:
                workload = generate_workload(WorkloadSpec(**generate), seed=seed)
            except TypeError as exc:
                raise BatchError(f"bad workload generate block: {exc}") from None
        elif "file" in workload_spec:
            workload = load_workload(workload_spec["file"])
        elif "inline" in workload_spec:
            workload = workload_from_dict(workload_spec["inline"])
        elif "swf" in workload_spec:
            from repro.workload import jobs_from_swf_block

            block = dict(workload_spec["swf"])
            workload = jobs_from_swf_block(block, seed=seed)
        else:
            raise BatchError(
                "workload spec needs a 'generate' block, a 'file' path, "
                "an 'inline' workload, or an 'swf' trace block"
            )

        sim = dict(spec.get("sim", {}))
        sim.pop("until", None)  # a run() argument, not a constructor one
        failures = None
        failure_spec = sim.pop("failures", None)
        if failure_spec and "trace" in failure_spec:
            try:
                failures = [
                    Failure(
                        time=f["time"],
                        node_index=f["node"],
                        downtime=f["downtime"],
                    )
                    for f in failure_spec["trace"]
                ]
            except (KeyError, TypeError) as exc:
                raise BatchError(f"bad failure trace entry: {exc}") from None
        elif failure_spec:
            horizon = failure_spec.get("horizon")
            if horizon is None:
                horizon = max(j.submit_time for j in workload) + 10 * max(
                    (j.walltime for j in workload if j.walltime != inf),
                    default=86400.0,
                )
            failures = generate_failures(
                num_nodes=platform.num_nodes,
                horizon=horizon,
                mtbf=failure_spec["mtbf"],
                mean_repair=failure_spec.get("mean_repair", 300.0),
                seed=int(failure_spec.get("seed", seed)),
            )
        interval = sim.pop("invocation_interval", None)
        known = {"requeue_on_failure", "max_requeues", "checkpoint_restart"}
        unknown = set(sim) - known
        if unknown:
            raise BatchError(f"unknown sim options: {sorted(unknown)}")
        instance = cls(
            platform,
            workload,
            algorithm=spec.get("algorithm", "easy"),
            invocation_interval=interval,
            failures=failures,
            start_processes=start_processes,
            **sim,
        )
        from copy import deepcopy

        instance.spec = deepcopy(dict(spec))
        return instance

    @property
    def monitor(self) -> Monitor:
        return self.batch.monitor

    @classmethod
    def resume(cls, snapshot) -> "Simulation":
        """Rebuild a live simulation from a :mod:`repro.replay` snapshot.

        The returned simulation continues bit-for-bit where the snapshot
        was taken: calling :meth:`run` on it produces a ``run_record`` and
        ``processed_events`` byte-identical to the cold run's.
        """
        from repro.replay import restore_simulation

        return restore_simulation(snapshot)

    def run(
        self,
        until: Optional[float] = None,
        *,
        trace=None,
        check_invariants: bool = False,
        snapshot_every: Optional[int] = None,
        snapshot_callback=None,
    ) -> Monitor:
        """Run to completion (or ``until``) and return the monitor.

        Parameters
        ----------
        until:
            Optional stop time (default: run until every job finished).
        snapshot_every:
            Take a full-state snapshot roughly every N processed events
            (at the first quiet boundary at or after each multiple; see
            :mod:`repro.replay`).  Snapshots collect on :attr:`snapshots`
            and are passed to ``snapshot_callback`` if given.  Requires a
            run to completion (``until=None``), a ``from_spec``-built
            simulation, and no tracing.
        trace:
            Enable the flight recorder (see :mod:`repro.tracing`).  Pass a
            :class:`~repro.tracing.Tracer` to buffer in memory, or a path
            to additionally export on exit — ``*.json`` writes Chrome
            trace-event format (Perfetto-loadable), anything else JSONL.
            The tracer is exposed as :attr:`tracer` afterwards.
        check_invariants:
            Subscribe the online invariant checker to the trace stream
            (implies an in-memory tracer if ``trace`` is None) and audit
            the monitor's series/segment consistency after the run.
            Raises :class:`~repro.tracing.InvariantViolation` if anything
            failed; the violations also remain on :attr:`violations`.

        Raises :class:`BatchError` if the workload gets stuck — i.e. events
        ran out while jobs are still pending and nothing can unblock them.
        """
        from repro.expressions import STATS as _EXPR_STATS

        expr_start = _EXPR_STATS.snapshot()
        tracer = checker = None
        trace_path: Optional[Path] = None
        if trace is not None or check_invariants:
            from repro.tracing import InvariantChecker, Tracer

            if isinstance(trace, Tracer):
                tracer = trace
            else:
                tracer = Tracer()
                if trace is not None:
                    trace_path = Path(trace)
            # Power profile rides along in sim.start (and arms the
            # streaming corridor audit) only when the platform declares
            # draw; the corridor is audited only for algorithms that claim
            # to respect it — the cap is a policy contract, not a law of
            # physics for corridor-oblivious schedulers.
            power_profile = self.batch.platform.power_profile()
            if power_profile is not None:
                power_profile = dict(
                    power_profile,
                    enforced=self.batch.algorithm.respects_power_corridor,
                )
            if check_invariants:
                checker = InvariantChecker(
                    num_nodes=self.batch.platform.num_nodes,
                    power=power_profile,
                )
                tracer.subscribe(checker.feed)
            self.tracer = tracer
            self.batch.tracer = tracer
            self.env.tracer = tracer
            self.batch.model.tracer = tracer
            start_args = dict(
                nodes=self.batch.platform.num_nodes,
                jobs=len(self.batch.jobs),
                algorithm=self.batch.algorithm.name,
            )
            if power_profile is not None:
                start_args["power"] = power_profile
            tracer.instant(
                "sim.start",
                "batch",
                self.batch.platform.name,
                self.env.now,
                **start_args,
            )

        hook = first_target = None
        if snapshot_every is not None:
            if snapshot_every <= 0:
                raise BatchError("snapshot_every must be > 0")
            if until is not None:
                raise BatchError("snapshot_every requires a run to completion")
            if tracer is not None:
                raise BatchError("snapshot_every is incompatible with tracing")
            from repro.replay import capture_snapshot

            self.snapshots = []

            def hook() -> int:
                snap = capture_snapshot(self)
                self.snapshots.append(snap)
                if snapshot_callback is not None:
                    snapshot_callback(snap)
                return self.env.processed_events + snapshot_every

            first_target = self.env.processed_events + snapshot_every

        try:
            if until is not None:
                self.env.run(until=until)
            else:
                try:
                    if hook is not None:
                        self.env.run_hooked(self.batch.all_done, first_target, hook)
                    else:
                        self.env.run(until=self.batch.all_done)
                except SimulationError:
                    stuck = [job.name for job in self.batch.queue]
                    running = [job.name for job in self.batch.running]
                    raise BatchError(
                        f"Simulation stalled: pending={stuck} running={running}. "
                        "Jobs cannot start (e.g. they need more nodes than the "
                        "scheduler will ever free)."
                    ) from None
        finally:
            if tracer is not None:
                tracer.instant(
                    "sim.end", "batch", self.batch.platform.name, self.env.now
                )
                tracer.close_open(self.env.now)
                if trace_path is not None:
                    if trace_path.suffix == ".json":
                        tracer.to_chrome(trace_path)
                    else:
                        tracer.to_jsonl(trace_path)

        self.monitor.attach_solver_stats(self.batch.model)
        self.monitor.attach_expression_stats(_EXPR_STATS.since(expr_start))
        self.monitor.finalize()
        if checker is not None:
            from repro.tracing import InvariantViolation, check_monitor

            checker.finish()
            violations = list(checker.violations)
            violations.extend(check_monitor(self.monitor))
            self.violations = violations
            if violations:
                raise InvariantViolation(violations)
        return self.monitor
