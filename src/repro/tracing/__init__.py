"""Structured tracing and runtime invariant checking.

The flight recorder (:class:`Tracer`) captures typed records of job
lifecycle, task activities, the reconfiguration protocol, scheduler
decisions, solver re-solves, and node faults, and exports them as JSONL
or Chrome trace-event JSON (Perfetto-loadable).  The invariant layer
(:class:`InvariantChecker`, :func:`check_monitor`) audits conservation
properties online or post-hoc.  See ``docs/TRACING.md``.

Typical use::

    sim = Simulation(platform, jobs, algorithm="malleable")
    monitor = sim.run(trace="run.jsonl", check_invariants=True)
"""

from repro.tracing.invariants import (
    InvariantChecker,
    InvariantViolation,
    Violation,
    check_monitor,
    check_trace,
)
from repro.tracing.tracer import (
    BATCH_TRACK,
    KERNEL_TRACK,
    SCHEDULER_TRACK,
    SCHEMA_VERSION,
    SOLVER_TRACK,
    TraceError,
    TraceRecord,
    Tracer,
    convert_jsonl_to_chrome,
    read_jsonl,
    validate_chrome_trace,
)

__all__ = [
    "BATCH_TRACK",
    "InvariantChecker",
    "InvariantViolation",
    "KERNEL_TRACK",
    "SCHEDULER_TRACK",
    "SCHEMA_VERSION",
    "SOLVER_TRACK",
    "TraceError",
    "TraceRecord",
    "Tracer",
    "Violation",
    "check_monitor",
    "check_trace",
    "convert_jsonl_to_chrome",
    "read_jsonl",
    "validate_chrome_trace",
]
