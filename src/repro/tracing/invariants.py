"""Runtime invariant checking over flight-recorder traces.

The checker audits conservation properties that must hold for *any*
scheduling policy — a violation is always a bug, either in the simulator
or in the checker, and both outcomes are actionable:

``monotonic-time``
    Records are emitted in non-decreasing time order (span end counts as
    the emission instant).
``node-double-alloc``
    A node is never allocated while already held, never released while
    free, and never released by a job that does not hold it.
``alloc-count``
    The batch system's reported allocated-node count always equals the
    number of nodes currently held (committed + reserved) per the
    per-node allocation records.
``queue-accounting``
    ``submits − starts − drops`` always equals the reported queue length.
``walltime``
    A started job's runtime never exceeds its walltime (beyond float
    tolerance — the watchdog kills at the walltime instant, which is the
    job's last scheduling opportunity).
``reserved-committed``
    Every node reserved by a reconfiguration order is eventually
    committed or released (at the latest when its job ends).
``terminal-release``
    When the simulation ends with no job running, no node is still held.
``power-corridor``
    Aggregate node draw (idle for free nodes, peak for held ones, zero
    for failed ones) never exceeds the platform's power corridor.  Armed
    only when the trace declares a corridor *and* marks it enforced
    (``sim.start``'s ``power`` args, set for algorithms that declare
    :attr:`~repro.scheduler.base.Algorithm.respects_power_corridor`) —
    the corridor is a policy contract, not a law of physics, so
    corridor-oblivious schedulers are not audited against it.  Draw is
    validated at *settled* instants: all records carrying one timestamp
    are applied before the check, so same-instant release-then-allocate
    transients cannot produce false positives.

Use it online (subscribe :meth:`InvariantChecker.feed` to a
:class:`~repro.tracing.Tracer`) or post-hoc over a saved trace
(:func:`check_trace`).  :func:`check_monitor` separately audits a
:class:`~repro.monitoring.Monitor`'s allocation series against its
per-job allocation segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf, isfinite
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Set, Union

from repro.tracing.tracer import TraceRecord, read_jsonl


@dataclass(slots=True)
class Violation:
    """One invariant failure: when, which invariant, and what happened."""

    time: float
    invariant: str
    message: str

    def as_dict(self) -> Dict[str, Any]:
        return {"time": self.time, "invariant": self.invariant, "message": self.message}

    def __str__(self) -> str:
        return f"[t={self.time:g}] {self.invariant}: {self.message}"


class InvariantViolation(Exception):
    """Raised by checked runs when at least one invariant failed."""

    def __init__(self, violations: List[Violation]) -> None:
        self.violations = list(violations)
        preview = "; ".join(str(v) for v in self.violations[:3])
        extra = len(self.violations) - 3
        if extra > 0:
            preview += f" (+{extra} more)"
        super().__init__(f"{len(self.violations)} invariant violation(s): {preview}")


class InvariantChecker:
    """Streaming checker over trace records.

    Feed records in emission order (:meth:`feed`), then call
    :meth:`finish` for the end-of-trace checks; :attr:`violations`
    accumulates everything found.  The checker is policy-agnostic: it
    only consumes record kinds and args, never simulator objects, so it
    works identically online and over a deserialized trace.
    """

    def __init__(
        self,
        *,
        num_nodes: Optional[int] = None,
        tolerance: float = 1e-9,
        power: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.num_nodes = num_nodes
        self.tolerance = tolerance
        self.violations: List[Violation] = []

        self._last_emission = -inf
        #: node index -> jid currently holding it (committed or reserved).
        self._owner: Dict[int, int] = {}
        self._submits = 0
        self._starts = 0
        self._drops = 0
        #: jid -> (start time, walltime) for running jobs.
        self._running: Dict[int, tuple] = {}
        #: jid -> reserved node indices of an uncommitted order.
        self._pending_orders: Dict[int, Set[int]] = {}
        self._sim_ended = False
        self._finished = False
        #: indices of currently-failed nodes (drawing zero watts).
        self._failed: Set[int] = set()
        # -- power corridor (armed via `power` or a sim.start record) -------
        self._power_armed = False
        self._power_idle: List[float] = []
        self._power_peak: List[float] = []
        self._power_corridor = inf
        #: Instant whose power state changed but is not yet validated; the
        #: check fires once emission time advances past it (settled state).
        self._power_dirty_at: Optional[float] = None
        self._arm_power(power)

    def _arm_power(self, profile: Optional[Dict[str, Any]]) -> None:
        """Arm the corridor audit from a ``sim.start``-shaped power profile.

        ``idle``/``peak`` may each be a scalar (uniform machine) or a
        per-node list; scalars need a known node count to expand.  Without
        a corridor, or with ``enforced`` false, the audit stays off.
        """
        if not profile:
            return
        corridor = profile.get("corridor")
        if corridor is None or not profile.get("enforced"):
            return
        idle = profile.get("idle", 0.0)
        peak = profile.get("peak")
        if peak is None:
            return
        count = self.num_nodes
        if isinstance(peak, list):
            count = len(peak)
        elif isinstance(idle, list):
            count = len(idle)
        if count is None:
            return  # scalar profile with unknown machine size
        self._power_idle = (
            [float(w) for w in idle] if isinstance(idle, list) else [float(idle)] * count
        )
        self._power_peak = (
            [float(w) for w in peak] if isinstance(peak, list) else [float(peak)] * count
        )
        self._power_corridor = float(corridor)
        self._power_armed = True

    def _power_touch(self, time: float) -> None:
        """Mark ``time`` as a power-state change awaiting a settled check."""
        if self._power_armed:
            self._power_dirty_at = time

    def _check_corridor(self) -> None:
        """Validate the settled draw at the last power-change instant."""
        time = self._power_dirty_at
        self._power_dirty_at = None
        if time is None:
            return
        draw = 0.0
        for index, idle in enumerate(self._power_idle):
            if index in self._failed:
                continue
            draw += self._power_peak[index] if index in self._owner else idle
        limit = self._power_corridor
        if draw > limit * (1 + 1e-9) + self.tolerance:
            self._violate(
                time,
                "power-corridor",
                f"aggregate draw {draw:g} W exceeds the {limit:g} W corridor",
            )

    # -- reporting ----------------------------------------------------------

    def _violate(self, time: float, invariant: str, message: str) -> None:
        self.violations.append(Violation(time, invariant, message))

    @property
    def ok(self) -> bool:
        return not self.violations

    # -- streaming ----------------------------------------------------------

    def feed(self, record: TraceRecord) -> None:
        """Consume one record (subscribe this to a live tracer)."""
        emission = record.end
        if emission < self._last_emission - self.tolerance:
            self._violate(
                emission,
                "monotonic-time",
                f"{record.kind} emitted at {emission:g} after t={self._last_emission:g}",
            )
        else:
            self._last_emission = max(self._last_emission, emission)

        if self._power_dirty_at is not None and emission > self._power_dirty_at:
            self._check_corridor()

        handler = self._HANDLERS.get(record.kind)
        if handler is not None:
            handler(self, record)

    def finish(self) -> List[Violation]:
        """Run end-of-trace checks; returns all violations found so far."""
        if self._finished:
            return self.violations
        self._finished = True
        self._check_corridor()
        time = self._last_emission if self._last_emission > -inf else 0.0
        for jid, reserved in sorted(self._pending_orders.items()):
            self._violate(
                time,
                "reserved-committed",
                f"job {jid}: order reserving nodes {sorted(reserved)} was never "
                "committed or released",
            )
        if self._sim_ended and not self._running and self._owner:
            held = {node: jid for node, jid in sorted(self._owner.items())}
            self._violate(
                time,
                "terminal-release",
                f"simulation ended with no running jobs but nodes still held: {held}",
            )
        return self.violations

    def check(self, records: Iterable[TraceRecord]) -> List[Violation]:
        """Post-hoc convenience: feed every record, then :meth:`finish`."""
        for record in records:
            self.feed(record)
        return self.finish()

    # -- record handlers ----------------------------------------------------

    def _queued_check(self, record: TraceRecord) -> None:
        reported = record.args.get("queued")
        if reported is None:
            return
        derived = self._submits - self._starts - self._drops
        if derived != reported:
            self._violate(
                record.time,
                "queue-accounting",
                f"after {record.kind} of job {record.args.get('jid')}: "
                f"submits({self._submits}) - starts({self._starts}) - "
                f"drops({self._drops}) = {derived}, but reported queue "
                f"length is {reported}",
            )

    def _on_submit(self, record: TraceRecord) -> None:
        self._submits += 1
        self._queued_check(record)

    def _on_start(self, record: TraceRecord) -> None:
        self._starts += 1
        jid = record.args.get("jid")
        walltime = record.args.get("walltime")
        self._running[jid] = (record.time, walltime if walltime is not None else inf)
        self._queued_check(record)

    def _on_queue_drop(self, record: TraceRecord) -> None:
        self._drops += 1
        self._pending_orders.pop(record.args.get("jid"), None)
        self._queued_check(record)

    def _on_end(self, record: TraceRecord) -> None:
        jid = record.args.get("jid")
        started = self._running.pop(jid, None)
        if started is not None:
            start, walltime = started
            runtime = record.time - start
            if isfinite(walltime) and runtime > walltime * (1 + 1e-9) + self.tolerance:
                self._violate(
                    record.time,
                    "walltime",
                    f"job {jid}: runtime {runtime:g} exceeds walltime {walltime:g}",
                )
        reserved = self._pending_orders.pop(jid, None)
        if reserved is not None:
            still_held = sorted(
                node for node in reserved if self._owner.get(node) == jid
            )
            if still_held:
                self._violate(
                    record.time,
                    "reserved-committed",
                    f"job {jid} ended still holding reserved nodes {still_held} "
                    "from an uncommitted order",
                )

    def _on_node_alloc(self, record: TraceRecord) -> None:
        node = record.args.get("node")
        jid = record.args.get("jid")
        holder = self._owner.get(node)
        if holder is not None:
            self._violate(
                record.time,
                "node-double-alloc",
                f"node {node} allocated to job {jid} while held by job {holder}",
            )
        self._owner[node] = jid
        self._power_touch(record.time)
        if self.num_nodes is not None and len(self._owner) > self.num_nodes:
            self._violate(
                record.time,
                "alloc-count",
                f"{len(self._owner)} nodes held on a {self.num_nodes}-node machine",
            )

    def _on_node_release(self, record: TraceRecord) -> None:
        node = record.args.get("node")
        jid = record.args.get("jid")
        holder = self._owner.get(node)
        if holder is None:
            self._violate(
                record.time,
                "node-double-alloc",
                f"node {node} released by job {jid} but was not allocated",
            )
            return
        if holder != jid:
            self._violate(
                record.time,
                "node-double-alloc",
                f"node {node} released by job {jid} but held by job {holder}",
            )
        del self._owner[node]
        self._power_touch(record.time)

    def _on_alloc_count(self, record: TraceRecord) -> None:
        reported = record.args.get("n")
        if reported is None:
            return
        if reported != len(self._owner):
            self._violate(
                record.time,
                "alloc-count",
                f"batch system reports {reported} allocated nodes, per-node "
                f"records say {len(self._owner)}",
            )

    def _on_reconf_order(self, record: TraceRecord) -> None:
        jid = record.args.get("jid")
        added = set(record.args.get("added", ()))
        if jid in self._pending_orders:
            self._violate(
                record.time,
                "reserved-committed",
                f"job {jid}: new order issued while a previous order is pending",
            )
        self._pending_orders[jid] = added

    def _on_reconf_commit(self, record: TraceRecord) -> None:
        jid = record.args.get("jid")
        self._pending_orders.pop(jid, None)

    def _on_node_fail(self, record: TraceRecord) -> None:
        self._failed.add(record.args.get("node"))
        self._power_touch(record.time)

    def _on_node_repair(self, record: TraceRecord) -> None:
        self._failed.discard(record.args.get("node"))
        self._power_touch(record.time)

    def _on_sim_start(self, record: TraceRecord) -> None:
        if self.num_nodes is None:
            self.num_nodes = record.args.get("nodes")
        if not self._power_armed:
            self._arm_power(record.args.get("power"))

    def _on_sim_end(self, record: TraceRecord) -> None:
        self._sim_ended = True

    _HANDLERS = {
        "job.submit": _on_submit,
        "job.start": _on_start,
        "job.queue_drop": _on_queue_drop,
        "job.complete": _on_end,
        "job.kill": _on_end,
        "node.alloc": _on_node_alloc,
        "node.release": _on_node_release,
        "node.fail": _on_node_fail,
        "node.repair": _on_node_repair,
        "alloc.count": _on_alloc_count,
        "reconf.order": _on_reconf_order,
        "reconf.commit": _on_reconf_commit,
        "sim.start": _on_sim_start,
        "sim.end": _on_sim_end,
    }


def check_trace(
    source: Union[str, "Path", Iterable[TraceRecord]],
    *,
    num_nodes: Optional[int] = None,
) -> List[Violation]:
    """Post-hoc check of a saved JSONL trace (path) or record iterable."""
    if isinstance(source, (str, Path)):
        records: Iterable[TraceRecord] = read_jsonl(source)
    else:
        records = source
    return InvariantChecker(num_nodes=num_nodes).check(records)


# -- monitor-side consistency ------------------------------------------------


def check_monitor(monitor: Any) -> List[Violation]:
    """Audit a finished :class:`~repro.monitoring.Monitor` for consistency.

    Validates the allocation/queue step series themselves (bounds,
    monotone time) and the conservation relation between the two
    allocation views: at every instant, the nodes committed to jobs via
    allocation segments can never exceed the reported allocated count
    (the count additionally includes nodes *reserved* for pending
    expansions, so it is an upper bound, with equality whenever no
    reservation is outstanding).
    """
    violations: List[Violation] = []
    num_nodes = monitor.num_nodes

    last_t = -inf
    for t, count in monitor.allocation_series:
        if t < last_t:
            violations.append(
                Violation(t, "series-time", f"allocation series time went backwards at {t:g}")
            )
        last_t = t
        if not 0 <= count <= num_nodes:
            violations.append(
                Violation(
                    t,
                    "alloc-count",
                    f"allocation series level {count} outside [0, {num_nodes}]",
                )
            )
    last_t = -inf
    for t, count in monitor.queue_series:
        if t < last_t:
            violations.append(
                Violation(t, "series-time", f"queue series time went backwards at {t:g}")
            )
        last_t = t
        if count < 0:
            violations.append(
                Violation(t, "queue-accounting", f"queue series level {count} is negative")
            )

    horizon = monitor.makespan()
    # Per-job segments must be sequential and non-overlapping.
    deltas: Dict[float, int] = {}
    for job in monitor.jobs:
        previous_end = -inf
        for seg in monitor.segments(job.jid):
            end = seg.end if seg.end is not None else horizon
            if seg.start < previous_end:
                violations.append(
                    Violation(
                        seg.start,
                        "segment-overlap",
                        f"job {job.jid}: segment starting at {seg.start:g} overlaps "
                        f"the previous one ending at {previous_end:g}",
                    )
                )
            previous_end = end
            if end < seg.start:
                violations.append(
                    Violation(
                        seg.start,
                        "segment-overlap",
                        f"job {job.jid}: segment ends ({end:g}) before it starts "
                        f"({seg.start:g})",
                    )
                )
                continue
            width = len(seg.node_indices)
            deltas[seg.start] = deltas.get(seg.start, 0) + width
            deltas[end] = deltas.get(end, 0) - width

    # Sweep: committed usage (from segments) vs reported level (series),
    # compared on the open intervals between changes so simultaneous
    # updates at one instant cannot produce false positives.
    series = list(monitor.allocation_series)
    times = sorted(set(deltas) | {t for t, _ in series})
    usage = 0
    series_index = 0
    level = 0
    for i, t in enumerate(times):
        usage += deltas.get(t, 0)
        while series_index < len(series) and series[series_index][0] <= t:
            level = series[series_index][1]
            series_index += 1
        if i + 1 < len(times) and usage > level:
            violations.append(
                Violation(
                    t,
                    "series-segment",
                    f"committed segment usage {usage} exceeds reported "
                    f"allocation level {level} on [{t:g}, {times[i + 1]:g})",
                )
            )
    if usage != 0:
        violations.append(
            Violation(
                horizon,
                "series-segment",
                f"allocation segments do not balance: {usage} nodes never released",
            )
        )
    return violations
