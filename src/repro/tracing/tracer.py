"""The simulation flight recorder.

A :class:`Tracer` collects typed, timestamped records of everything that
happens inside a run — job lifecycle transitions, per-node task
activities, the reconfiguration protocol, scheduler invocations with
their decision outcomes, solver re-solves, node faults — buffered in
memory and exportable as JSONL (one record per line, the simulator's
native schema) or as Chrome trace-event JSON loadable in Perfetto /
``chrome://tracing``.

Records come in two phases, mirroring the Chrome model:

``"I"`` (instant)
    A point event: job submitted, scheduler invoked, node failed.
``"X"`` (complete span)
    An interval with a start time and a duration: a task computing on a
    node, a node being held by a job, a redistribution in flight.  Spans
    are *emitted at their end* (only then is the duration known), so the
    record stream is ordered by emission instant — ``time`` for
    instants, ``time + dur`` for spans.

Tracing is strictly opt-in: every producer holds an ``Optional[Tracer]``
and guards emission with ``if tracer is not None`` so a disabled tracer
costs one attribute check per would-be record (measured < 3% on the E5
benchmark, see ``docs/TRACING.md``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

#: Bumped whenever the record schema changes shape.
SCHEMA_VERSION = 1

#: Reserved track names (everything else must be ``node:<index>``).
SCHEDULER_TRACK = "scheduler"
SOLVER_TRACK = "solver"
BATCH_TRACK = "batch"
KERNEL_TRACK = "kernel"

_KNOWN_TRACKS = (SCHEDULER_TRACK, SOLVER_TRACK, BATCH_TRACK, KERNEL_TRACK)


class TraceError(Exception):
    """Raised for malformed traces (import, export, or validation)."""


@dataclass(slots=True)
class TraceRecord:
    """One flight-recorder entry.

    Attributes
    ----------
    time:
        Simulated seconds.  For spans this is the *start* of the
        interval; the emission instant is ``time + dur``.
    kind:
        Dotted category, e.g. ``"job.start"``, ``"task.run"``,
        ``"solver.resolve"`` (see ``docs/TRACING.md`` for the catalogue).
    phase:
        ``"I"`` for instants, ``"X"`` for complete spans.
    track:
        Where the record belongs: ``"node:<i>"`` or one of the reserved
        tracks (``scheduler``, ``solver``, ``batch``, ``kernel``).
    name:
        Human-readable label (job name, task name, invocation type).
    dur:
        Span duration in simulated seconds (0.0 for instants).
    args:
        Structured attributes (job id, node lists, decision outcomes).
    """

    time: float
    kind: str
    phase: str
    track: str
    name: str
    dur: float = 0.0
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        """Emission instant: ``time`` for instants, span end for spans."""
        return self.time + self.dur

    def as_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "time": self.time,
            "kind": self.kind,
            "ph": self.phase,
            "track": self.track,
            "name": self.name,
        }
        if self.phase == "X":
            record["dur"] = self.dur
        if self.args:
            record["args"] = self.args
        return record

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceRecord":
        try:
            return cls(
                time=float(payload["time"]),
                kind=str(payload["kind"]),
                phase=str(payload["ph"]),
                track=str(payload["track"]),
                name=str(payload["name"]),
                dur=float(payload.get("dur", 0.0)),
                args=dict(payload.get("args", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(f"malformed trace record {payload!r}: {exc}") from None


class Tracer:
    """In-memory structured trace buffer with optional live subscribers.

    Producers call :meth:`instant` / :meth:`span` (or the
    :meth:`begin` / :meth:`end` pair for spans whose end is not known
    up front).  Consumers either read :attr:`records` after the run or
    :meth:`subscribe` a callback to see records as they are emitted —
    the online invariant checker uses the latter.
    """

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []
        self._subscribers: List[Callable[[TraceRecord], None]] = []
        #: Open span bookkeeping: key -> (start, kind, track, name, args).
        self._open: Dict[Any, Tuple[float, str, str, str, Dict[str, Any]]] = {}

    def __len__(self) -> int:
        return len(self.records)

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback`` for every record as soon as it is emitted."""
        self._subscribers.append(callback)

    # -- emission -----------------------------------------------------------

    def _emit(self, record: TraceRecord) -> None:
        self.records.append(record)
        for callback in self._subscribers:
            callback(record)

    def instant(self, kind: str, track: str, name: str, time: float, **args: Any) -> None:
        """Record a point event at ``time``."""
        self._emit(TraceRecord(time, kind, "I", track, name, 0.0, args))

    def span(
        self,
        kind: str,
        track: str,
        name: str,
        start: float,
        end: float,
        **args: Any,
    ) -> None:
        """Record a completed interval ``[start, end]``."""
        if end < start:
            raise TraceError(f"span {kind}/{name}: end {end} before start {start}")
        self._emit(TraceRecord(start, kind, "X", track, name, end - start, args))

    def begin(
        self, key: Any, kind: str, track: str, name: str, time: float, **args: Any
    ) -> None:
        """Open a span under ``key``; :meth:`end` with the same key closes it.

        Re-opening a live key discards the stale entry (producers that
        lose track of an interval must not corrupt later ones).
        """
        self._open[key] = (time, kind, track, name, args)

    def end(self, key: Any, time: float, **args: Any) -> None:
        """Close the span opened under ``key``; unknown keys are ignored."""
        entry = self._open.pop(key, None)
        if entry is None:
            return
        start, kind, track, name, open_args = entry
        merged = {**open_args, **args}
        self.span(kind, track, name, start, time, **merged)

    def close_open(self, time: float) -> int:
        """Close every dangling span at ``time`` (end of run).

        Closed records gain ``open=True`` so consumers can tell a span
        truncated by the simulation end from one that completed.
        """
        keys = list(self._open)
        for key in keys:
            self.end(key, time, open=True)
        return len(keys)

    # -- JSONL export -------------------------------------------------------

    def jsonl_lines(self) -> Iterator[str]:
        """The trace as JSONL: a header line, then one record per line."""
        yield json.dumps(
            {"schema": "elastisim-trace", "version": SCHEMA_VERSION},
            sort_keys=True,
        )
        for record in self.records:
            yield json.dumps(record.as_dict(), sort_keys=True)

    def to_jsonl(self, path: Union[str, Path]) -> Path:
        """Write the trace as JSONL and return the path."""
        path = Path(path)
        with path.open("w") as stream:
            for line in self.jsonl_lines():
                stream.write(line)
                stream.write("\n")
        return path

    # -- Chrome trace-event export ------------------------------------------

    def chrome_trace(self) -> Dict[str, Any]:
        """The trace in Chrome trace-event format (Perfetto-loadable).

        Simulated seconds map to trace microseconds (``ts = time * 1e6``)
        so one simulated second reads as one "millisecond-scale" unit in
        the viewer.  Tracks map to (pid, tid) pairs: the reserved tracks
        live in process 1 ("simulator"), per-node tracks in process 2
        ("nodes") with ``tid = node index``.  Metadata records name every
        process and thread.
        """
        events: List[Dict[str, Any]] = []
        seen_tracks: Dict[str, Tuple[int, int]] = {}

        def track_ids(track: str) -> Tuple[int, int]:
            ids = seen_tracks.get(track)
            if ids is None:
                ids = _chrome_track_ids(track)
                seen_tracks[track] = ids
            return ids

        for record in self.records:
            pid, tid = track_ids(record.track)
            event: Dict[str, Any] = {
                "name": record.name,
                "cat": record.kind,
                "pid": pid,
                "tid": tid,
                "ts": record.time * 1e6,
            }
            if record.phase == "X":
                event["ph"] = "X"
                event["dur"] = record.dur * 1e6
            else:
                event["ph"] = "i"
                event["s"] = "t"
            if record.args:
                event["args"] = _json_safe_args(record.args)
            events.append(event)

        metadata: List[Dict[str, Any]] = []
        pids_named = set()
        for track, (pid, tid) in sorted(seen_tracks.items(), key=lambda kv: kv[1]):
            if pid not in pids_named:
                pids_named.add(pid)
                metadata.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": 0,
                        "args": {"name": "simulator" if pid == 1 else "nodes"},
                    }
                )
            metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        return {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ms",
            "otherData": {"schema": "elastisim-trace", "version": SCHEMA_VERSION},
        }

    def to_chrome(self, path: Union[str, Path]) -> Path:
        """Write the Chrome trace-event JSON (validated) and return the path."""
        trace = self.chrome_trace()
        validate_chrome_trace(trace)
        path = Path(path)
        path.write_text(json.dumps(trace))
        return path


def _chrome_track_ids(track: str) -> Tuple[int, int]:
    """Map a track name to a Chrome (pid, tid) pair."""
    if track in _KNOWN_TRACKS:
        return (1, _KNOWN_TRACKS.index(track))
    if track.startswith("node:"):
        try:
            return (2, int(track.split(":", 1)[1]))
        except ValueError:
            raise TraceError(f"bad node track {track!r}") from None
    raise TraceError(
        f"unknown track {track!r}: expected node:<index> or one of {_KNOWN_TRACKS}"
    )


def _json_safe_args(args: Dict[str, Any]) -> Dict[str, Any]:
    """Collapse non-finite floats (inf walltimes) so strict JSON accepts them."""
    safe: Dict[str, Any] = {}
    for key, value in args.items():
        if isinstance(value, float) and (value != value or value in (float("inf"), float("-inf"))):
            safe[key] = None
        else:
            safe[key] = value
    return safe


# -- import / validation ----------------------------------------------------


def read_jsonl(source: Union[str, Path, Iterable[str]]) -> List[TraceRecord]:
    """Load a JSONL trace (path or iterable of lines) back into records."""
    if isinstance(source, (str, Path)):
        path = Path(source)
        try:
            lines: Iterable[str] = path.read_text().splitlines()
        except FileNotFoundError:
            raise TraceError(f"trace file not found: {path}") from None
    else:
        lines = source
    records: List[TraceRecord] = []
    header_seen = False
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"line {lineno}: not JSON: {exc}") from None
        if not header_seen:
            header_seen = True
            if payload.get("schema") == "elastisim-trace":
                version = payload.get("version")
                if version != SCHEMA_VERSION:
                    raise TraceError(
                        f"unsupported trace version {version!r} "
                        f"(this build reads version {SCHEMA_VERSION})"
                    )
                continue
            # Headerless traces (hand-written fixtures) are accepted.
        records.append(TraceRecord.from_dict(payload))
    return records


#: Chrome event phases the exporter produces.
_CHROME_PHASES = ("X", "i", "M")


def validate_chrome_trace(trace: Any) -> None:
    """Validate a Chrome trace-event object against the exporter's schema.

    Raises :class:`TraceError` on the first problem.  This is the
    round-trip gate: ``Tracer.to_chrome`` always validates its own
    output, and ``elastisim trace check --chrome`` validates files.
    """
    if not isinstance(trace, dict):
        raise TraceError(f"chrome trace must be an object, got {type(trace).__name__}")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise TraceError("chrome trace needs a 'traceEvents' list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise TraceError(f"{where}: not an object")
        phase = event.get("ph")
        if phase not in _CHROME_PHASES:
            raise TraceError(f"{where}: bad phase {phase!r} (expected {_CHROME_PHASES})")
        for key in ("name", "pid", "tid"):
            if key not in event:
                raise TraceError(f"{where}: missing {key!r}")
        if not isinstance(event["name"], str):
            raise TraceError(f"{where}: name must be a string")
        for key in ("pid", "tid"):
            if not isinstance(event[key], int):
                raise TraceError(f"{where}: {key} must be an int")
        if phase == "M":
            args = event.get("args")
            if not isinstance(args, dict) or "name" not in args:
                raise TraceError(f"{where}: metadata needs args.name")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts != ts:
            raise TraceError(f"{where}: bad ts {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur != dur or dur < 0:
                raise TraceError(f"{where}: span needs dur >= 0, got {dur!r}")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            raise TraceError(f"{where}: args must be an object")


def convert_jsonl_to_chrome(
    source: Union[str, Path], destination: Union[str, Path]
) -> Path:
    """Convert a JSONL trace file to a validated Chrome trace-event file."""
    tracer = Tracer()
    tracer.records = read_jsonl(source)
    return tracer.to_chrome(destination)
