"""Pluggable campaign executors behind one async ``submit``/``shutdown`` protocol.

:class:`~repro.campaign.runner.CampaignRunner` no longer hardwires a
process pool: every backend implements :class:`BaseExecutor` — an async
``submit(fn, *args)`` returning the scenario record, plus ``shutdown()``
— and advertises what it can do through class-level capability flags.
Four implementations ship:

``in-process``
    Runs scenarios sequentially on the caller's event loop.  Zero
    concurrency, zero subprocesses: the deterministic debugging backend
    (breakpoints and profilers see straight through it).

``process-pool``
    The previous hardwired behavior, extracted: scenarios fan out over a
    :class:`concurrent.futures.ProcessPoolExecutor`.  A hard worker
    death (OOM kill, segfault) surfaces as :class:`ExecutorBroken` and
    the runner re-runs the affected scenarios in-process.

``asyncio``
    Cooperative thread offload (``asyncio.to_thread``) bounded by a
    semaphore.  No subprocess spawn cost and callers can run it inside a
    larger async application; the GIL limits CPU parallelism, so it
    shines for I/O-heavy scenarios (traced runs) and embedding, not raw
    throughput.  Scenarios carrying engine pins take an exclusive turn
    so their process-global backend switches cannot race other threads.

``queue-worker``
    Distributed: scenarios land in a filesystem-backed shared queue
    (:mod:`repro.campaign.queue`) and independent worker processes —
    spawned locally or started on other hosts with
    ``elastisim campaign worker --queue-dir`` — claim, execute, and
    publish results with lease-based crash recovery.

All backends feed the same ``run_scenario`` entry point, so ``result``
fingerprints are byte-identical across every executor — the serial /
parallel / cached identity contract extends to the whole matrix.
"""

from __future__ import annotations

import asyncio
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from functools import partial
from typing import Any, Callable, ClassVar, Dict, Optional, Tuple, Type

from repro.campaign.spec import CampaignError

#: Scenario records are plain dicts on both sides of the protocol.
ScenarioRecord = Dict[str, Any]


class ExecutorError(CampaignError):
    """Raised for executor misconfiguration (unknown name, missing options)."""


class ExecutorBroken(Exception):
    """The backend lost a scenario: a worker died, not the scenario itself.

    ``run_scenario`` already converts scenario failures into ``failed``
    records, so ``submit`` raising this means the *executor* broke
    underneath the work.  The runner responds by re-running the affected
    scenarios in-process, where per-scenario isolation still applies.
    """


class BaseExecutor(ABC):
    """Async submit/shutdown protocol every campaign backend implements.

    ``submit`` awaits one scenario to completion and returns its record;
    concurrency comes from the runner gathering many submits at once.
    Capability flags are class-level so callers (and tests) can reason
    about a backend without instantiating it.
    """

    #: Registry name (the ``--executor`` value).
    name: ClassVar[str] = "base"
    #: True when scenarios may run concurrently.
    parallel: ClassVar[bool] = False
    #: True when scenarios run in other processes (own memory, own pins).
    isolates_processes: ClassVar[bool] = False
    #: True when work may be picked up by workers on other hosts.
    distributed: ClassVar[bool] = False

    @abstractmethod
    async def submit(
        self, fn: Callable[..., ScenarioRecord], /, *args: Any
    ) -> ScenarioRecord:
        """Execute ``fn(*args)`` and return the scenario record."""

    async def shutdown(self, cancel: bool = False) -> None:
        """Release backend resources; with ``cancel`` drop queued work."""
        return None


class InProcessExecutor(BaseExecutor):
    """Sequential execution on the caller's loop: the debugging backend."""

    name = "in-process"

    async def submit(
        self, fn: Callable[..., ScenarioRecord], /, *args: Any
    ) -> ScenarioRecord:
        # Runs synchronously on the event loop: submits complete strictly
        # in submission order, which is exactly the deterministic serial
        # semantics this backend promises.
        return fn(*args)


class ProcessPoolCampaignExecutor(BaseExecutor):
    """The extracted pre-executor behavior: fan out over worker processes."""

    name = "process-pool"
    parallel = True
    isolates_processes = True

    def __init__(self, *, workers: Optional[int] = None) -> None:
        if workers is not None and int(workers) < 1:
            raise ExecutorError(f"process-pool needs >= 1 worker, got {workers}")
        self._workers = int(workers) if workers is not None else None
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self._workers)
        return self._pool

    async def submit(
        self, fn: Callable[..., ScenarioRecord], /, *args: Any
    ) -> ScenarioRecord:
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(self._ensure_pool(), partial(fn, *args))
        except BrokenProcessPool as exc:
            # One hard worker death poisons every in-flight future; each
            # affected submit reports broken and the runner re-runs the
            # survivors in-process.
            raise ExecutorBroken(f"process pool broke: {exc}") from exc

    async def shutdown(self, cancel: bool = False) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=not cancel, cancel_futures=cancel)
            self._pool = None


class AsyncioExecutor(BaseExecutor):
    """Semaphore-bounded ``asyncio.to_thread`` offload.

    Engine-pinned scenarios take an exclusive turn: pins flip
    process-global backend switches, and although every backend is
    byte-identical on results, an unpinned scenario racing a pin's
    restore could leave the process defaults flipped after the campaign.
    Exclusivity keeps pin/restore pairs properly nested.
    """

    name = "asyncio"
    parallel = True

    def __init__(self, *, workers: int = 4) -> None:
        if int(workers) < 1:
            raise ExecutorError(f"asyncio executor needs >= 1 worker, got {workers}")
        self._workers = int(workers)
        self._active = 0
        self._exclusive = False
        self._cond: Optional[asyncio.Condition] = None

    def _condition(self) -> asyncio.Condition:
        # Created lazily so the executor can be built outside a loop.
        if self._cond is None:
            self._cond = asyncio.Condition()
        return self._cond

    async def submit(
        self, fn: Callable[..., ScenarioRecord], /, *args: Any
    ) -> ScenarioRecord:
        pinned = bool(args and isinstance(args[0], dict) and args[0].get("engine"))
        cond = self._condition()
        async with cond:
            if pinned:
                await cond.wait_for(lambda: self._active == 0 and not self._exclusive)
                self._exclusive = True
            else:
                await cond.wait_for(
                    lambda: self._active < self._workers and not self._exclusive
                )
            self._active += 1
        try:
            return await asyncio.to_thread(fn, *args)
        finally:
            async with cond:
                self._active -= 1
                if pinned:
                    self._exclusive = False
                cond.notify_all()


def _executor_types() -> Dict[str, Type[BaseExecutor]]:
    # Imported lazily: queue.py imports this module for BaseExecutor.
    from repro.campaign.queue import QueueWorkerExecutor

    return {
        cls.name: cls
        for cls in (
            InProcessExecutor,
            ProcessPoolCampaignExecutor,
            AsyncioExecutor,
            QueueWorkerExecutor,
        )
    }


def executor_names() -> Tuple[str, ...]:
    """Registry names, in documentation order."""
    return tuple(_executor_types())


def make_executor(name: str, **options: Any) -> BaseExecutor:
    """Build a registered executor by name.

    Options are backend-specific (``workers`` everywhere; ``queue_dir``,
    ``lease_s``, ``store`` … for ``queue-worker``); unknown names raise
    :class:`ExecutorError` listing the registry.
    """
    types = _executor_types()
    if name not in types:
        raise ExecutorError(
            f"unknown executor {name!r} (available: {', '.join(sorted(types))})"
        )
    cls = types[name]
    try:
        return cls(**options)
    except TypeError as exc:
        raise ExecutorError(f"bad options for executor {name!r}: {exc}") from None


__all__ = [
    "AsyncioExecutor",
    "BaseExecutor",
    "ExecutorBroken",
    "ExecutorError",
    "InProcessExecutor",
    "ProcessPoolCampaignExecutor",
    "ScenarioRecord",
    "executor_names",
    "make_executor",
]
