"""Campaigns: declarative scenario grids run in parallel with caching.

The scaling axis *across* simulations: where :class:`repro.Simulation`
runs one scenario, a campaign runs a whole parameter grid — fanned out
over worker processes, memoised in a content-addressed result cache, and
reported in a machine-readable form CI can diff against baselines.

    >>> from repro.campaign import CampaignRunner, ScenarioSpec
    >>> scenarios = [
    ...     ScenarioSpec(
    ...         platform={"nodes": {"count": 16, "flops": 1e12},
    ...                   "network": {"topology": "star", "bandwidth": 1e10}},
    ...         workload={"generate": {"num_jobs": 10}},
    ...         algorithm=algorithm,
    ...     )
    ...     for algorithm in ("easy", "malleable")
    ... ]
    >>> report = CampaignRunner(scenarios, workers=2).run()
    >>> len(report.ok)
    2

See ``docs/CAMPAIGNS.md`` for the campaign-file format and CLI usage.
"""

from repro.campaign.cache import CACHE_DIR_ENV, ResultCache, default_cache_dir
from repro.campaign.compare import (
    Comparison,
    CompareError,
    Delta,
    compare_reports,
    load_report,
)
from repro.campaign.runner import (
    REPORT_METRICS,
    CampaignReport,
    CampaignRunner,
    result_fingerprint,
    run_scenario,
)
from repro.campaign.spec import (
    CAMPAIGN_FORMAT,
    DEFAULT_SALT,
    ENGINE_MODES,
    CampaignError,
    ScenarioSpec,
    campaign_name,
    canonical_json,
    canonicalize,
    derive_seed,
    expand_campaign,
    load_campaign,
    scenario_key,
    scenarios_from_grid,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CAMPAIGN_FORMAT",
    "CampaignError",
    "CampaignReport",
    "CampaignRunner",
    "Comparison",
    "CompareError",
    "DEFAULT_SALT",
    "Delta",
    "ENGINE_MODES",
    "REPORT_METRICS",
    "ResultCache",
    "ScenarioSpec",
    "campaign_name",
    "canonical_json",
    "canonicalize",
    "compare_reports",
    "default_cache_dir",
    "derive_seed",
    "expand_campaign",
    "load_campaign",
    "load_report",
    "result_fingerprint",
    "run_scenario",
    "scenario_key",
    "scenarios_from_grid",
]
