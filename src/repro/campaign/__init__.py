"""Campaigns: declarative scenario grids run in parallel with caching.

The scaling axis *across* simulations: where :class:`repro.Simulation`
runs one scenario, a campaign runs a whole parameter grid — fanned out
over a pluggable executor backend (in-process, process pool, asyncio,
or a distributed queue-worker fleet), memoised in a content-addressed
result cache that can be layered over a shared artifact store, and
reported in a machine-readable form CI can diff against baselines.

    >>> from repro.campaign import CampaignRunner, ScenarioSpec
    >>> scenarios = [
    ...     ScenarioSpec(
    ...         platform={"nodes": {"count": 16, "flops": 1e12},
    ...                   "network": {"topology": "star", "bandwidth": 1e10}},
    ...         workload={"generate": {"num_jobs": 10}},
    ...         algorithm=algorithm,
    ...     )
    ...     for algorithm in ("easy", "malleable")
    ... ]
    >>> report = CampaignRunner(scenarios, workers=2).run()
    >>> len(report.ok)
    2

See ``docs/CAMPAIGNS.md`` for the campaign-file format, executor and
distributed-run configuration, and CLI usage.
"""

from repro.campaign.aggregate import (
    AGGREGATE_SCHEMA,
    MetricAccumulator,
    QuantileSketch,
    StreamingAggregator,
)
from repro.campaign.cache import CACHE_DIR_ENV, ResultCache, default_cache_dir
from repro.campaign.compare import (
    Comparison,
    CompareError,
    Delta,
    compare_reports,
    load_report,
)
from repro.campaign.executors import (
    AsyncioExecutor,
    BaseExecutor,
    ExecutorBroken,
    ExecutorError,
    InProcessExecutor,
    ProcessPoolCampaignExecutor,
    executor_names,
    make_executor,
)
from repro.campaign.report import (
    REPORT_SCHEMA,
    STUDY_METRICS,
    CampaignStudyReport,
    build_report,
)
from repro.campaign.queue import (
    DEFAULT_LEASE_S,
    QueueError,
    QueueWorkerExecutor,
    ScenarioQueue,
    spawn_worker,
    worker_loop,
)
from repro.campaign.runner import (
    DEFAULT_EXECUTOR,
    REPORT_METRICS,
    CampaignReport,
    CampaignRunner,
    ScenarioTimeout,
    result_fingerprint,
    run_scenario,
    run_scenario_warm,
)
from repro.campaign.spec import (
    CAMPAIGN_FORMAT,
    DEFAULT_SALT,
    ENGINE_MODES,
    CampaignError,
    ScenarioSpec,
    campaign_name,
    campaign_run_settings,
    canonical_json,
    canonicalize,
    derive_seed,
    expand_campaign,
    load_campaign,
    load_campaign_spec,
    scenario_key,
    scenarios_from_grid,
)
from repro.campaign.store import STORE_DIR_ENV, ArtifactStore, default_store_dir

__all__ = [
    "AGGREGATE_SCHEMA",
    "ArtifactStore",
    "AsyncioExecutor",
    "BaseExecutor",
    "CACHE_DIR_ENV",
    "CAMPAIGN_FORMAT",
    "CampaignError",
    "CampaignReport",
    "CampaignRunner",
    "CampaignStudyReport",
    "Comparison",
    "CompareError",
    "DEFAULT_EXECUTOR",
    "DEFAULT_LEASE_S",
    "DEFAULT_SALT",
    "Delta",
    "ENGINE_MODES",
    "ExecutorBroken",
    "ExecutorError",
    "InProcessExecutor",
    "MetricAccumulator",
    "ProcessPoolCampaignExecutor",
    "QuantileSketch",
    "QueueError",
    "QueueWorkerExecutor",
    "REPORT_METRICS",
    "REPORT_SCHEMA",
    "STUDY_METRICS",
    "ResultCache",
    "STORE_DIR_ENV",
    "ScenarioQueue",
    "ScenarioSpec",
    "ScenarioTimeout",
    "StreamingAggregator",
    "build_report",
    "campaign_name",
    "campaign_run_settings",
    "canonical_json",
    "canonicalize",
    "compare_reports",
    "default_cache_dir",
    "default_store_dir",
    "derive_seed",
    "executor_names",
    "expand_campaign",
    "load_campaign",
    "load_campaign_spec",
    "load_report",
    "make_executor",
    "result_fingerprint",
    "run_scenario",
    "run_scenario_warm",
    "scenario_key",
    "scenarios_from_grid",
    "spawn_worker",
    "worker_loop",
]
