"""Shared artifact store: the content-addressed cache, fleet-wide.

:class:`ArtifactStore` layers two :class:`~repro.campaign.cache.ResultCache`
trees under one lookup/store interface:

* a **local** tree (the per-host cache, ``~/.cache/elastisim/campaigns``
  by default) answering most lookups at local-disk speed;
* an optional **shared** tree on a filesystem every worker can reach
  (NFS scratch, a job array's shared project dir), so a fleet of queue
  workers — and every future campaign pointed at the same store —
  dedupes globally.

Semantics:

* **read-through** — a local miss falls through to the shared tree, and
  a shared hit is copied back into the local tree so the next lookup on
  this host never crosses the network again;
* **write-through** — fresh results land in both trees (each write is
  atomic: temp file + rename, exactly as the local cache always did),
  so concurrent writers on different hosts can only ever race to write
  byte-identical records to the same content address;
* the content addresses are unchanged — the same SHA-256 over the
  canonical scenario spec plus simulator-version salt — so a shared
  store is just a second place the existing keys resolve.

``$ELASTISIM_STORE_DIR`` supplies a default shared root; the CLI flag
``--store-dir`` overrides it per run.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.campaign.cache import ResultCache
from repro.campaign.spec import DEFAULT_SALT

#: Environment variable supplying a default shared store root.
STORE_DIR_ENV = "ELASTISIM_STORE_DIR"


def default_store_dir() -> Optional[Path]:
    """``$ELASTISIM_STORE_DIR`` as a path, or ``None`` when unset."""
    override = os.environ.get(STORE_DIR_ENV)
    return Path(override) if override else None


class ArtifactStore(ResultCache):
    """A :class:`ResultCache` with an optional shared second layer.

    With ``shared_root=None`` this is exactly the plain local cache.
    """

    def __init__(
        self,
        local_root: Union[str, Path, None] = None,
        *,
        shared_root: Union[str, Path, None] = None,
        salt: str = DEFAULT_SALT,
    ) -> None:
        super().__init__(local_root, salt=salt)
        if shared_root is None:
            shared_root = default_store_dir()
        self.shared: Optional[ResultCache] = (
            ResultCache(shared_root, salt=salt) if shared_root is not None else None
        )
        #: Lookups answered by the shared layer (local misses).
        self.shared_hits = 0

    def lookup(self, key: str) -> Optional[Dict[str, Any]]:
        """Local tree first, then the shared tree with local copy-back."""
        record = super().lookup(key)
        if record is not None or self.shared is None:
            return record
        record = self.shared.lookup(key)
        if record is not None:
            self.shared_hits += 1
            # Copy-back: future lookups on this host stay local.  The
            # super() call keeps the local hit/miss counters honest.
            super().store(key, record)
        return record

    def store(self, key: str, record: Dict[str, Any]) -> Optional[Path]:
        """Write-through: persist to the local tree and the shared tree."""
        path = super().store(key, record)
        if self.shared is not None:
            self.shared.store(key, record)
        return path


__all__ = ["STORE_DIR_ENV", "ArtifactStore", "default_store_dir"]
