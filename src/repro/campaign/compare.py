"""Regression checking: diff a campaign/bench report against a baseline.

Reports are the aggregate JSON emitted by
:meth:`repro.campaign.runner.CampaignReport.write` — the same
``{"header": [...], "rows": [{...}]}`` shape as the ``BENCH_*.json``
artefacts from :func:`benchmarks.common.write_bench_json` — so one
checker covers both campaign results and benchmark timings.

Rows are matched on their label column (first header entry), numeric
columns are compared with per-metric relative tolerances, and the
direction of "worse" is inferred from the metric name (utilization and
completion counts are higher-is-better; everything else, lower).  CI
invokes this as ``elastisim campaign compare`` or
``python -m repro.campaign.compare``.

Exit codes: 0 clean (or ``--soft``), 1 regressions, 2 usage/input error.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

#: Metrics where a *decrease* is a regression.
HIGHER_IS_BETTER = ("util", "completed", "speedup", "throughput", "hits")

#: Default relative tolerance for metrics without an explicit one.
DEFAULT_TOLERANCE = 0.05


class CompareError(Exception):
    """Raised for unreadable or malformed reports."""


@dataclass
class Delta:
    """One metric of one row, compared against the baseline."""

    row: str
    metric: str
    current: float
    baseline: float
    tolerance: float
    higher_is_better: bool

    @property
    def rel_change(self) -> float:
        if self.baseline == 0:
            return 0.0 if self.current == 0 else float("inf")
        return (self.current - self.baseline) / abs(self.baseline)

    @property
    def regressed(self) -> bool:
        change = self.rel_change
        if self.higher_is_better:
            return change < -self.tolerance
        return change > self.tolerance

    def describe(self) -> str:
        arrow = "better is higher" if self.higher_is_better else "better is lower"
        return (
            f"{self.row}: {self.metric} {self.baseline:g} -> {self.current:g} "
            f"({self.rel_change:+.1%}, tolerance {self.tolerance:.1%}, {arrow})"
        )


@dataclass
class Comparison:
    """Outcome of diffing two reports."""

    deltas: List[Delta]
    missing_rows: List[str]
    new_rows: List[str]

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def clean(self) -> bool:
        return not self.regressions and not self.missing_rows


def metric_direction(metric: str) -> bool:
    """True when higher values of ``metric`` are better."""
    lowered = metric.lower()
    return any(token in lowered for token in HIGHER_IS_BETTER)


def _normalize_report(report: Mapping[str, Any]) -> Mapping[str, Any]:
    """Fold alternative report shapes into the ``header``/``rows`` one.

    The streaming-aggregation payloads written by ``elastisim campaign
    aggregate`` (schema ``elastisim-campaign-aggregate/1``) carry a
    ``metrics`` mapping instead of rows; they become one row per metric,
    labelled by metric name, so aggregate regressions gate exactly like
    bench and campaign tables.
    """
    schema = report.get("schema")
    metrics = report.get("metrics")
    if (
        isinstance(schema, str)
        and schema.startswith("elastisim-campaign-aggregate/")
        and isinstance(metrics, Mapping)
    ):
        # One row, columns "<metric>_<stat>": the metric name stays part
        # of every column so metric_direction() sees it (utilization
        # means are higher-is-better even though the stat is "mean").
        row: Dict[str, Any] = {"report": "aggregate"}
        for name in sorted(metrics):
            stats = metrics[name]
            if not isinstance(stats, Mapping):
                raise CompareError(f"malformed aggregate metric {name!r}: {stats!r}")
            for stat in sorted(stats):
                row[f"{name}_{stat}"] = stats[stat]
        scenarios = report.get("scenarios")
        if isinstance(scenarios, (int, float)):
            row["scenarios"] = scenarios
        return {"header": ["report", *[c for c in row if c != "report"]], "rows": [row]}
    return report


def _rows_by_label(report: Mapping[str, Any]) -> Dict[str, Mapping[str, Any]]:
    report = _normalize_report(report)
    header = report.get("header")
    rows = report.get("rows")
    if not isinstance(header, list) or not header or not isinstance(rows, list):
        raise CompareError("report needs 'header' and 'rows' (write_bench_json shape)")
    label = header[0]
    out: Dict[str, Mapping[str, Any]] = {}
    for row in rows:
        if not isinstance(row, Mapping) or label not in row:
            raise CompareError(f"malformed row (no {label!r} label): {row!r}")
        out[str(row[label])] = row
    return out


def compare_reports(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    *,
    metrics: Optional[Sequence[str]] = None,
    tolerances: Optional[Mapping[str, float]] = None,
    default_tolerance: float = DEFAULT_TOLERANCE,
) -> Comparison:
    """Diff two reports row by row.

    ``metrics`` restricts the compared columns (default: every column
    numeric in both rows); ``tolerances`` maps metric name to relative
    tolerance, overriding ``default_tolerance``.
    """
    tolerances = dict(tolerances or {})
    current_rows = _rows_by_label(current)
    baseline_rows = _rows_by_label(baseline)

    deltas: List[Delta] = []
    for name, base_row in baseline_rows.items():
        cur_row = current_rows.get(name)
        if cur_row is None:
            continue
        columns = metrics if metrics is not None else list(base_row)
        for metric in columns:
            base_value = base_row.get(metric)
            cur_value = cur_row.get(metric)
            if not _is_number(base_value) or not _is_number(cur_value):
                continue
            deltas.append(
                Delta(
                    row=name,
                    metric=metric,
                    current=float(cur_value),
                    baseline=float(base_value),
                    tolerance=tolerances.get(metric, default_tolerance),
                    higher_is_better=metric_direction(metric),
                )
            )
    return Comparison(
        deltas=deltas,
        missing_rows=sorted(set(baseline_rows) - set(current_rows)),
        new_rows=sorted(set(current_rows) - set(baseline_rows)),
    )


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def load_report(path: Union[str, Path]) -> Dict[str, Any]:
    try:
        payload = json.loads(Path(path).read_text())
    except OSError as exc:
        raise CompareError(f"cannot read report: {exc}") from None
    except json.JSONDecodeError as exc:
        raise CompareError(f"invalid JSON in {path}: {exc}") from None
    if not isinstance(payload, dict):
        raise CompareError(f"report must be a JSON object: {path}")
    return payload


def _parse_tolerances(pairs: Sequence[str]) -> Dict[str, float]:
    tolerances: Dict[str, float] = {}
    for pair in pairs:
        metric, _, value = pair.partition("=")
        if not metric or not value:
            raise CompareError(f"--tolerance wants metric=value, got {pair!r}")
        try:
            tolerances[metric] = float(value)
        except ValueError:
            raise CompareError(f"bad tolerance value in {pair!r}") from None
    return tolerances


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="elastisim campaign compare",
        description="diff a campaign/bench report against a committed baseline",
    )
    parser.add_argument("current", help="report JSON produced by this run")
    parser.add_argument("baseline", help="committed baseline report JSON")
    parser.add_argument(
        "--metric",
        action="append",
        default=None,
        metavar="NAME",
        help="compare only these columns (repeatable; default: all numeric)",
    )
    parser.add_argument(
        "--tolerance",
        action="append",
        default=[],
        metavar="METRIC=REL",
        help="per-metric relative tolerance, e.g. makespan=0.02 (repeatable)",
    )
    parser.add_argument(
        "--default-tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"tolerance for unlisted metrics (default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--soft",
        action="store_true",
        help="report regressions but exit 0 (baseline still maturing)",
    )
    parser.add_argument(
        "--missing-baseline-ok",
        action="store_true",
        help="exit 0 with a warning when the baseline file does not exist",
    )
    args = parser.parse_args(argv)

    if args.missing_baseline_ok and not Path(args.baseline).is_file():
        print(
            f"compare: no baseline at {args.baseline} yet - skipping "
            "(commit one to arm the regression gate)",
            file=sys.stderr,
        )
        return 0

    try:
        comparison = compare_reports(
            load_report(args.current),
            load_report(args.baseline),
            metrics=args.metric,
            tolerances=_parse_tolerances(args.tolerance),
            default_tolerance=args.default_tolerance,
        )
    except CompareError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    for row in comparison.missing_rows:
        print(f"MISSING  {row} (in baseline, not in current report)")
    for row in comparison.new_rows:
        print(f"NEW      {row} (not in baseline)")
    for delta in comparison.regressions:
        print(f"REGRESSED  {delta.describe()}")
    ok = len(comparison.deltas) - len(comparison.regressions)
    print(
        f"compared {len(comparison.deltas)} metrics across "
        f"{len(set(d.row for d in comparison.deltas))} rows: "
        f"{ok} within tolerance, {len(comparison.regressions)} regressed, "
        f"{len(comparison.missing_rows)} rows missing"
    )
    if comparison.clean:
        return 0
    if args.soft:
        print("soft mode: regressions reported but not fatal", file=sys.stderr)
        return 0
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())


__all__ = [
    "Comparison",
    "CompareError",
    "DEFAULT_TOLERANCE",
    "Delta",
    "compare_reports",
    "load_report",
    "main",
    "metric_direction",
]
