"""Content-addressed on-disk cache of scenario results.

Layout (two-level fan-out keeps directories small on big campaigns)::

    <root>/
        <key[:2]>/<key>.json      one scenario record per file

``key`` is the SHA-256 of the canonicalised scenario spec salted with the
simulator version (:data:`repro.campaign.spec.DEFAULT_SALT`): any change
to the physics of a scenario — or to the simulator itself — moves the
scenario to a new address, so stale entries can never be *wrong*, only
unreachable.  Writes are atomic (temp file + rename) so a campaign killed
mid-flight never leaves a truncated record behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.campaign.spec import DEFAULT_SALT

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "ELASTISIM_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$ELASTISIM_CACHE_DIR``, else ``~/.cache/elastisim/campaigns``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "elastisim" / "campaigns"


class ResultCache:
    """A content-addressed store of successful scenario records."""

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        *,
        salt: str = DEFAULT_SALT,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.salt = salt
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def lookup(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached record for ``key``, or ``None`` on a miss.

        Corrupt entries (partial writes from pre-atomic-rename tooling,
        disk faults) are treated as misses and removed.
        """
        path = self.path_for(key)
        try:
            record = json.loads(path.read_text())
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        if not isinstance(record, dict) or record.get("status") != "ok":
            self.misses += 1
            return None
        self.hits += 1
        return record

    def store(self, key: str, record: Dict[str, Any]) -> Optional[Path]:
        """Persist a successful record; failed runs are never cached."""
        if record.get("status") != "ok":
            return None
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(record, sort_keys=True))
        os.replace(tmp, path)
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Remove every entry; returns the number of records dropped."""
        dropped = 0
        if not self.root.is_dir():
            return dropped
        for path in self.root.glob("??/*.json"):
            try:
                path.unlink()
                dropped += 1
            except OSError:
                pass
        return dropped


__all__ = ["CACHE_DIR_ENV", "ResultCache", "default_cache_dir"]
