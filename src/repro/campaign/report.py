"""Study-grade report tables folded from campaign scenario records.

The evaluation stage of the real-workload malleability study
(``docs/STUDY.md``): scenario records — in memory, or streamed back out
of ``scenarios.jsonl`` / worker increment shards — are grouped by their
grid coordinates (type mix, strategy, parallel-fraction point, …) and
each group is folded through a :class:`~repro.campaign.aggregate
.StreamingAggregator`, one aggregator per group, so the per-mix means
are exact (Fraction sums) and byte-identical no matter which executor
produced the records or in which order the shards arrive.

The output is one table: a row per group, columns ``<metric>_mean`` /
``<metric>_min`` / ``<metric>_max`` for each report metric, rendered as

* JSON in the ``{"header": [...], "rows": [{...}]}`` shape the
  regression comparer (:mod:`repro.campaign.compare`) diffs, tagged with
  :data:`REPORT_SCHEMA`;
* GitHub-flavoured markdown for humans.

``elastisim campaign report`` is the CLI face of this module.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.campaign.aggregate import StreamingAggregator

#: Schema tag on report payloads.
REPORT_SCHEMA = "elastisim-campaign-report/1"

#: Metrics promoted into study report tables: the published-results
#: comparison reads makespan, utilization, and mean/p95 response time.
STUDY_METRICS = (
    "makespan",
    "mean_utilization",
    "mean_turnaround",
    "p95_turnaround",
    "mean_wait",
    "completed_jobs",
    "killed_jobs",
    "total_reconfigurations",
)

#: Statistics emitted per metric column.  Means are exact rationals in
#: the fold, so they are order- and executor-independent.
_STATS = ("mean", "min", "max")


class CampaignStudyReport:
    """Grouped aggregation of scenario records into one comparison table."""

    def __init__(
        self,
        *,
        group_by: Optional[Sequence[str]] = None,
        metrics: Sequence[str] = STUDY_METRICS,
    ) -> None:
        self.group_by = None if group_by is None else tuple(group_by)
        self.metrics = tuple(metrics)
        self._groups: Dict[Tuple[Tuple[str, Any], ...], StreamingAggregator] = {}

    # -- folding -----------------------------------------------------------

    @staticmethod
    def _resolve(record: Mapping[str, Any], params: Mapping[str, Any], key: str) -> Any:
        """A group coordinate: ``params`` first, then scalar record fields.

        ``params`` carries the grid coordinates; ``algorithm`` (and other
        spec fields) live in the record's embedded ``scenario`` payload,
        so strategy comparisons group correctly without every campaign
        having to duplicate the algorithm into a grid axis.
        """
        if key in params:
            return params[key]
        value = record.get(key)
        if value is not None and not isinstance(value, (Mapping, list)):
            return value
        scenario = record.get("scenario")
        if isinstance(scenario, Mapping):
            value = scenario.get(key)
            if not isinstance(value, (Mapping, list)):
                return value
        return None

    def _group_key(self, record: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
        params = record.get("params") or {}
        if not isinstance(params, Mapping):
            params = {}
        if self.group_by is None:
            names = set(params) - {"seed"}
            if self._resolve(record, params, "algorithm") is not None:
                names.add("algorithm")
            keys = sorted(names)
        else:
            keys = list(self.group_by)
        return tuple((key, self._resolve(record, params, key)) for key in keys)

    def fold_record(self, record: Mapping[str, Any]) -> None:
        """Fold one scenario record into its group's aggregator.

        Grouping reads the record's ``params`` (grid coordinates plus
        platform/workload labels) and the scheduling algorithm from its
        embedded scenario spec; seeds are never part of ``params``, so a
        group naturally aggregates across the seed axis.
        """
        key = self._group_key(record)
        aggregator = self._groups.get(key)
        if aggregator is None:
            aggregator = StreamingAggregator(self.metrics)
            self._groups[key] = aggregator
        aggregator.fold_record(dict(record))

    def fold_records(self, records: Iterable[Mapping[str, Any]]) -> int:
        count = 0
        for record in records:
            self.fold_record(record)
            count += 1
        return count

    def fold_jsonl(self, path: Union[str, Path]) -> int:
        """Fold a ``scenarios.jsonl`` stream or worker increment shard."""
        folded = 0
        with Path(path).open() as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # trailing partial line from a killed worker
                if isinstance(record, dict):
                    self.fold_record(record)
                    folded += 1
        return folded

    def fold_paths(self, paths: Iterable[Union[str, Path]]) -> int:
        return sum(self.fold_jsonl(path) for path in paths)

    # -- rendering ---------------------------------------------------------

    @staticmethod
    def _label(key: Tuple[Tuple[str, Any], ...]) -> str:
        if not key:
            return "all"
        return "/".join(f"{name}={value}" for name, value in key)

    def header(self) -> List[str]:
        columns = ["group", "scenarios", "failed"]
        for metric in self.metrics:
            columns.extend(f"{metric}_{stat}" for stat in _STATS)
        return columns

    def rows(self) -> List[Dict[str, Any]]:
        """One row per group, ordered by group label for determinism."""
        rows: List[Dict[str, Any]] = []
        for key in sorted(self._groups, key=self._label):
            aggregator = self._groups[key]
            ok = aggregator.status_counts.get("ok", 0)
            row: Dict[str, Any] = {
                "group": self._label(key),
                "scenarios": aggregator.scenarios,
                "failed": aggregator.scenarios - ok,
            }
            for metric in self.metrics:
                accumulator = aggregator.accumulator(metric)
                row[f"{metric}_mean"] = accumulator.mean
                row[f"{metric}_min"] = accumulator.min
                row[f"{metric}_max"] = accumulator.max
            rows.append(row)
        return rows

    def as_dict(self) -> Dict[str, Any]:
        """JSON payload in the comparer's ``header``/``rows`` shape."""
        return {
            "schema": REPORT_SCHEMA,
            "group_by": None if self.group_by is None else list(self.group_by),
            "metrics": list(self.metrics),
            "header": self.header(),
            "rows": self.rows(),
        }

    def to_json(self) -> str:
        """Deterministic serialisation: byte-identical for identical records."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=2) + "\n"

    def to_markdown(self, *, title: str = "Campaign report") -> str:
        """GitHub-flavoured markdown table of the same rows."""
        header = self.header()
        lines = [f"# {title}", ""]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "|".join(" --- " for _ in header) + "|")
        for row in self.rows():
            cells = []
            for column in header:
                value = row.get(column)
                if isinstance(value, float):
                    cells.append(f"{value:.4g}")
                elif value is None:
                    cells.append("—")
                else:
                    cells.append(str(value))
            lines.append("| " + " | ".join(cells) + " |")
        lines.append("")
        return "\n".join(lines)

    def write(
        self, output_dir: Union[str, Path], *, title: str = "Campaign report"
    ) -> Dict[str, Path]:
        """Write ``report.json`` + ``report.md`` into ``output_dir``."""
        out = Path(output_dir)
        out.mkdir(parents=True, exist_ok=True)
        json_path = out / "report.json"
        json_path.write_text(self.to_json())
        markdown_path = out / "report.md"
        markdown_path.write_text(self.to_markdown(title=title))
        return {"json": json_path, "markdown": markdown_path}


def build_report(
    records: Iterable[Mapping[str, Any]],
    *,
    group_by: Optional[Sequence[str]] = None,
    metrics: Sequence[str] = STUDY_METRICS,
) -> CampaignStudyReport:
    """Fold ``records`` into a grouped study report in one call."""
    report = CampaignStudyReport(group_by=group_by, metrics=metrics)
    report.fold_records(records)
    return report


__all__ = [
    "REPORT_SCHEMA",
    "STUDY_METRICS",
    "CampaignStudyReport",
    "build_report",
]
