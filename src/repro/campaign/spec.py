"""Declarative scenario grids for simulation campaigns.

A *campaign* is a cartesian product of axes — platform x workload x
algorithm x seeds x arbitrary named grid axes — expanded into a flat list
of :class:`ScenarioSpec` instances.  Every scenario is fully described by
plain JSON-serialisable data, which buys three properties at once:

* **worker safety** — scenarios cross process boundaries as dicts and are
  materialised into live objects inside the worker
  (:meth:`repro.batch.Simulation.from_spec`);
* **content addressing** — the SHA-256 of the canonical serialisation
  (plus a simulator-version salt) keys the on-disk result cache
  (:mod:`repro.campaign.cache`);
* **reproducibility** — the canonical form *is* the experiment record.

Grid axes may be referenced from workload/platform fields as expression
strings evaluated with :mod:`repro.expressions` — e.g. a campaign file::

    {
      "name": "load-sweep",
      "platform": {"nodes": {"count": 64, "flops": 1e12},
                   "network": {"topology": "star", "bandwidth": 1e10}},
      "workload": {"generate": {"num_jobs": 30,
                                "malleable_fraction": "share",
                                "mean_runtime": "load * 20 * 64 / 6.3"}},
      "algorithms": ["easy", "malleable"],
      "seeds": [0, 1],
      "grid": {"load": [0.5, 0.9, 1.3], "share": [0.0, 0.5, 1.0]}
    }

expands to 2 x 2 x 3 x 3 = 36 scenarios.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Union



from repro import __version__
from repro.expressions import ExpressionError, compile_expression

#: Bump when the scenario schema or result-record schema changes in a way
#: that invalidates previously cached results.
CAMPAIGN_FORMAT = 1

#: Default cache salt: old caches are dead weight, never wrong results.
DEFAULT_SALT = f"elastisim-campaign-f{CAMPAIGN_FORMAT}-v{__version__}"

#: Dict keys whose string values are never treated as grid expressions.
#: ``type_mix`` carries ``"rigid,moldable,malleable"`` probability vectors
#: (see :mod:`repro.workload.malleable_mix`).
_LITERAL_KEYS = frozenset({"name", "topology", "file", "type_mix"})

#: Ways a scenario may obtain its workload.
_WORKLOAD_KINDS = ("generate", "file", "inline", "swf")

#: Engine-backend pins a scenario may carry: ``compiled`` (expression
#: pipeline), ``vectorize`` (max-min solver dispatch; ``None`` = auto),
#: ``array_engine`` (struct-of-arrays slot engine).
ENGINE_MODES = frozenset({"array_engine", "compiled", "vectorize"})


class CampaignError(Exception):
    """Raised for malformed campaign or scenario specifications."""


# -- canonicalisation ---------------------------------------------------------


def canonicalize(value: Any) -> Any:
    """Normalise a spec fragment into canonical JSON-compatible data.

    Mappings are rebuilt with sorted string keys, sequences become lists,
    and integral floats collapse to ints so ``32`` and ``32.0`` hash the
    same.  Raises :class:`CampaignError` on non-JSON-serialisable input.
    """
    if isinstance(value, Mapping):
        out = {}
        for key in sorted(value):
            if not isinstance(key, str):
                raise CampaignError(f"spec keys must be strings, got {key!r}")
            out[key] = canonicalize(value[key])
        return out
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise CampaignError(f"non-finite numbers are not canonical: {value!r}")
        return int(value) if value.is_integer() else value
    if isinstance(value, (int, str)):
        return value
    raise CampaignError(f"not JSON-serialisable: {value!r} ({type(value).__name__})")


def canonical_json(value: Any) -> str:
    """The canonical single-line serialisation used for hashing and reports."""
    return json.dumps(canonicalize(value), sort_keys=True, separators=(",", ":"))


def scenario_key(scenario: Mapping[str, Any], *, salt: str = DEFAULT_SALT) -> str:
    """Content address of a scenario: SHA-256 over salt + canonical spec."""
    digest = hashlib.sha256()
    digest.update(salt.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(canonical_json(scenario).encode("utf-8"))
    return digest.hexdigest()


def derive_seed(base_seed: int, *parts: Any) -> int:
    """A deterministic 63-bit seed derived from a base seed and labels.

    Used to fan one campaign-level seed out into per-scenario seeds that
    are stable under grid reordering (they depend on the *labels*, not the
    expansion index).
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode("utf-8"))
    for part in parts:
        digest.update(b"\x00")
        digest.update(canonical_json(part).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") >> 1


# -- scenario ----------------------------------------------------------------


def _normalize_engine(engine: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate an engine-pinning block and fold values to booleans.

    Recognised keys are :data:`ENGINE_MODES`; ``vectorize`` additionally
    accepts ``None`` for the shipped auto-dispatch.  Grid expressions
    resolve to numbers, so 0/1 are accepted and folded to booleans.
    """
    unknown = set(engine) - ENGINE_MODES
    if unknown:
        raise CampaignError(
            f"unknown engine modes: {sorted(unknown)} "
            f"(recognised: {sorted(ENGINE_MODES)})"
        )
    out: Dict[str, Any] = {}
    for key in sorted(engine):
        value = engine[key]
        if value is None and key == "vectorize":
            out[key] = None
        elif isinstance(value, bool):
            out[key] = value
        elif isinstance(value, (int, float)) and value in (0, 1):
            out[key] = bool(value)
        else:
            raise CampaignError(f"engine mode {key!r} must be boolean, got {value!r}")
    return out


@dataclass
class ScenarioSpec:
    """One grid point: everything needed to run a single simulation.

    ``platform``/``workload``/``algorithm``/``seed``/``sim`` define the
    physics and are hashed into the content key; ``name`` and ``params``
    are report labels and deliberately excluded from it.  ``engine``
    optionally pins performance backends (see :data:`ENGINE_MODES`) —
    pins select *how* the run executes, never what it computes: the
    backends are byte-identical on ``run_record``, so the result
    fingerprint is unaffected, but a pinned scenario gets its own content
    key so the cache cannot answer it with a run from another backend.
    """

    platform: Dict[str, Any]
    workload: Dict[str, Any]
    algorithm: str = "easy"
    seed: int = 0
    sim: Dict[str, Any] = field(default_factory=dict)
    #: Engine-backend pins; empty means "whatever the process defaults are".
    engine: Dict[str, Any] = field(default_factory=dict)
    #: Grid-point coordinates, carried into report rows.
    params: Dict[str, Any] = field(default_factory=dict)
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.algorithm, str) or not self.algorithm:
            raise CampaignError(f"algorithm must be a non-empty string: {self.algorithm!r}")
        if not any(k in self.workload for k in _WORKLOAD_KINDS):
            raise CampaignError(
                "workload spec needs a 'generate' block, a 'file' path, "
                "an 'inline' workload, or an 'swf' trace block"
            )
        self.engine = _normalize_engine(self.engine)
        if not self.name:
            self.name = self._auto_name()

    def _auto_name(self) -> str:
        coords = [f"{k}={self.params[k]}" for k in sorted(self.params)]
        return "/".join([self.algorithm, *coords, f"seed={self.seed}"])

    def canonical(self) -> Dict[str, Any]:
        """The hashed portion of the spec in canonical form."""
        spec: Dict[str, Any] = {
            "platform": self.platform,
            "workload": self.workload,
            "algorithm": self.algorithm,
            "seed": int(self.seed),
            "sim": self.sim,
        }
        # Only present when pinned: unpinned scenarios keep the content
        # keys (and therefore cached results) they had before the engine
        # field existed.
        if self.engine:
            spec["engine"] = self.engine
        result: Dict[str, Any] = canonicalize(spec)
        return result

    def key(self, *, salt: str = DEFAULT_SALT) -> str:
        return scenario_key(self.canonical(), salt=salt)

    def as_record(self) -> Dict[str, Any]:
        """Full serialisable form (labels included) for reports."""
        record = self.canonical()
        record["name"] = self.name
        record["params"] = canonicalize(self.params)
        return record


# -- grid expansion ----------------------------------------------------------


def _resolve(value: Any, variables: Mapping[str, Any]) -> Any:
    """Substitute grid variables into a spec fragment.

    String leaves (outside :data:`_LITERAL_KEYS`) are compiled with the
    repro expression language and evaluated against the grid point; strings
    that do not parse or reference unknown variables pass through verbatim.
    """
    if isinstance(value, Mapping):
        return {
            k: (v if k in _LITERAL_KEYS else _resolve(v, variables))
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_resolve(v, variables) for v in value]
    if isinstance(value, str):
        try:
            return compile_expression(value).evaluate(variables)
        except ExpressionError:
            return value
    return value


def _as_list(spec: Mapping[str, Any], singular: str, plural: str, default: Any) -> List[Any]:
    if singular in spec and plural in spec:
        raise CampaignError(f"give either {singular!r} or {plural!r}, not both")
    if plural in spec:
        values = spec[plural]
        if not isinstance(values, (list, tuple)) or not values:
            raise CampaignError(f"{plural!r} must be a non-empty list")
        return list(values)
    if singular in spec:
        return [spec[singular]]
    if default is None:
        raise CampaignError(f"campaign spec needs {singular!r} or {plural!r}")
    return [default]


def expand_campaign(spec: Mapping[str, Any]) -> List[ScenarioSpec]:
    """Expand a campaign mapping into its flat scenario list.

    Recognised keys: ``name``, ``platform``/``platforms``,
    ``workload``/``workloads``, ``algorithm``/``algorithms``, ``seeds``
    (or ``num_seeds`` + optional ``base_seed``), ``sim``, ``engine``,
    ``grid``.  ``engine`` values may be grid expressions, so a campaign
    can A/B engine backends along a grid axis.
    """
    unknown = set(spec) - {
        "name",
        "platform",
        "platforms",
        "workload",
        "workloads",
        "algorithm",
        "algorithms",
        "seeds",
        "num_seeds",
        "base_seed",
        "sim",
        "engine",
        "grid",
        "scenario_timeout",
        "executor",
    }
    if unknown:
        raise CampaignError(f"unknown campaign keys: {sorted(unknown)}")
    campaign_run_settings(spec)  # validate runner-level keys early

    platforms = _as_list(spec, "platform", "platforms", None)
    workloads = _as_list(spec, "workload", "workloads", None)
    algorithms = _as_list(spec, "algorithm", "algorithms", "easy")
    for algorithm in algorithms:
        if not isinstance(algorithm, str):
            raise CampaignError(f"algorithm names must be strings: {algorithm!r}")

    if "seeds" in spec and "num_seeds" in spec:
        raise CampaignError("give either 'seeds' or 'num_seeds', not both")
    if "num_seeds" in spec:
        base = int(spec.get("base_seed", 0))
        seeds = [derive_seed(base, i) for i in range(int(spec["num_seeds"]))]
    else:
        seeds = [int(s) for s in spec.get("seeds", [0])]
        if not seeds:
            raise CampaignError("'seeds' must be a non-empty list")

    sim = dict(spec.get("sim", {}))
    engine = dict(spec.get("engine", {}))
    grid = dict(spec.get("grid", {}))
    for axis, values in grid.items():
        if not isinstance(values, (list, tuple)) or not values:
            raise CampaignError(f"grid axis {axis!r} must be a non-empty list")
    axis_names = sorted(grid)
    axis_values = [grid[name] for name in axis_names]

    scenarios: List[ScenarioSpec] = []
    label_platform = len(platforms) > 1
    label_workload = len(workloads) > 1
    for p_index, platform in enumerate(platforms):
        for w_index, workload in enumerate(workloads):
            for algorithm in algorithms:
                for seed in seeds:
                    for point in itertools.product(*axis_values) if axis_names else [()]:
                        variables = dict(zip(axis_names, point))
                        variables["seed"] = seed
                        params = dict(zip(axis_names, point))
                        if label_platform:
                            params["platform"] = platform.get("name", f"p{p_index}")
                        if label_workload:
                            params["workload"] = (
                                workload.get("name", f"w{w_index}")
                                if isinstance(workload, Mapping)
                                else f"w{w_index}"
                            )
                        scenarios.append(
                            ScenarioSpec(
                                platform=_resolve(platform, variables),
                                workload=_resolve(workload, variables),
                                algorithm=algorithm,
                                seed=seed,
                                sim=_resolve(sim, variables),
                                engine=_resolve(engine, variables),
                                params=params,
                            )
                        )
    names = [s.name for s in scenarios]
    if len(set(names)) != len(names):
        for index, scenario in enumerate(scenarios):
            scenario.name = f"{scenario.name}#{index}"
    return scenarios


def load_campaign_spec(path: Union[str, Path]) -> Dict[str, Any]:
    """Parse a campaign file into its raw mapping (JSON, or TOML by extension)."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise CampaignError(f"cannot read campaign file: {exc}") from None
    if path.suffix.lower() == ".toml":
        import tomllib

        try:
            spec = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise CampaignError(f"invalid TOML in {path}: {exc}") from None
    else:
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CampaignError(f"invalid JSON in {path}: {exc}") from None
    if not isinstance(spec, Mapping):
        raise CampaignError(f"campaign file must hold an object, got {type(spec).__name__}")
    return dict(spec)


def load_campaign(path: Union[str, Path]) -> List[ScenarioSpec]:
    """Load and expand a campaign file (JSON, or TOML by extension)."""
    path = Path(path)
    spec = load_campaign_spec(path)
    scenarios = expand_campaign(spec)
    base = path.parent
    for scenario in scenarios:
        _pin_workload_file(scenario, base)
    return scenarios


def _pin_workload_file(scenario: ScenarioSpec, base: Path) -> None:
    """Resolve workload file paths and pin their content hashes.

    The file's SHA-256 is embedded into the spec so the content address —
    and therefore the result cache — tracks the file's *content*, not its
    name.  Applies to both ``workload.file`` job lists and the trace
    inside a ``workload.swf`` block.
    """
    targets = [scenario.workload]
    swf = scenario.workload.get("swf")
    if isinstance(swf, dict):
        targets.append(swf)
    for block in targets:
        ref = block.get("file")
        if ref is None:
            continue
        resolved = Path(ref)
        if not resolved.is_absolute():
            resolved = base / resolved
        try:
            payload = resolved.read_bytes()
        except OSError as exc:
            raise CampaignError(
                f"cannot read workload file {resolved}: {exc}"
            ) from None
        block["file"] = str(resolved)
        block["sha256"] = hashlib.sha256(payload).hexdigest()


def campaign_run_settings(spec: Mapping[str, Any]) -> Dict[str, Any]:
    """Runner-level settings a campaign file may carry.

    ``scenario_timeout`` (positive seconds) and ``executor`` (a backend
    name) configure *how* the campaign runs, never what it computes —
    they are excluded from scenario content keys, and CLI flags override
    them.  Returns only the keys actually present.
    """
    out: Dict[str, Any] = {}
    timeout = spec.get("scenario_timeout")
    if timeout is not None:
        if (
            not isinstance(timeout, (int, float))
            or isinstance(timeout, bool)
            or timeout <= 0
        ):
            raise CampaignError(
                f"scenario_timeout must be a positive number of seconds, "
                f"got {timeout!r}"
            )
        out["scenario_timeout"] = float(timeout)
    executor = spec.get("executor")
    if executor is not None:
        if not isinstance(executor, str) or not executor:
            raise CampaignError(
                f"executor must be a backend name string, got {executor!r}"
            )
        out["executor"] = executor
    return out


def campaign_name(spec: Mapping[str, Any], default: str = "campaign") -> str:
    name = spec.get("name", default)
    if not isinstance(name, str) or not name:
        raise CampaignError(f"campaign name must be a non-empty string: {name!r}")
    return name


def scenarios_from_grid(
    axes: Mapping[str, Sequence[Any]],
    build: Any,
) -> List[ScenarioSpec]:
    """Python-side grid helper: call ``build(**point)`` per grid point.

    ``build`` returns a :class:`ScenarioSpec` (or ``None`` to skip the
    point).  Axis order follows the mapping's iteration order.
    """
    names = list(axes)
    scenarios: List[ScenarioSpec] = []
    for point in itertools.product(*(axes[name] for name in names)):
        scenario = build(**dict(zip(names, point)))
        if scenario is not None:
            scenarios.append(scenario)
    return scenarios


__all__ = [
    "CAMPAIGN_FORMAT",
    "DEFAULT_SALT",
    "ENGINE_MODES",
    "CampaignError",
    "ScenarioSpec",
    "campaign_name",
    "campaign_run_settings",
    "canonical_json",
    "canonicalize",
    "derive_seed",
    "expand_campaign",
    "load_campaign",
    "load_campaign_spec",
    "scenario_key",
    "scenarios_from_grid",
]
