"""Streaming result aggregation: fold JSONL increments, never hold it all.

A million-scenario sweep cannot materialise every record in one process.
Instead, workers append result increments to per-worker JSONL shards
(:meth:`repro.campaign.queue.ScenarioQueue.append_increment`) and a
:class:`StreamingAggregator` folds them — record by record, shard by
shard, in any order — into fixed-memory running statistics:

* **counts** per status (and per ``error_kind``) — exact;
* **means** — exact and *order-independent*: sums accumulate as exact
  rationals (:class:`fractions.Fraction`), so any sharding or
  permutation of the same records produces the bit-identical mean,
  extending the campaign byte-identity contract to aggregates;
* **percentiles** — a fixed-memory mergeable quantile sketch
  (:class:`QuantileSketch`, t-digest flavoured) with a *certified*
  error bound per query.

Aggregators merge associatively (``a.merge(b)``), so a tree of partial
aggregates folds exactly like one sequential pass.
"""

from __future__ import annotations

import json
import math
from fractions import Fraction
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.campaign.runner import REPORT_METRICS

#: Schema tag on aggregate payloads.
AGGREGATE_SCHEMA = "elastisim-campaign-aggregate/1"

#: Default sketch resolution: centroids hold <= max(1, ceil(n/delta))
#: points, so quantile rank error is typically <= 2/delta.
DEFAULT_COMPRESSION = 100

#: Default percentiles reported by :meth:`StreamingAggregator.as_dict`.
DEFAULT_PERCENTILES = (0.5, 0.9, 0.99)


class QuantileSketch:
    """Fixed-memory mergeable quantile sketch over disjoint value intervals.

    Centroids are ``[lo, hi, weight, sum]`` rows covering *disjoint*
    value intervals, kept sorted.  Compression greedily merges sorted
    neighbours while the merged weight stays under
    ``max(1, ceil(n / compression))`` — and *always* merges overlapping
    intervals (which only arise when sketches built from different
    shards interleave), so disjointness is an invariant.

    **Documented error bound.**  Because intervals are disjoint and
    weights are exact, the centroid whose cumulative weight range covers
    rank ``r`` brackets the exact rank-``r`` order statistic:
    :meth:`quantile_bounds` returns ``(lo, hi)`` with the *guarantee*
    that the exact quantile lies in ``[lo, hi]`` — certified accounting,
    not an estimate.  :meth:`quantile` interpolates inside that bracket;
    with compression :math:`\\delta` each regular centroid holds at most
    ``max(1, ceil(n/δ))`` points, so the estimate's rank error is
    typically ``<= 2/δ`` (forced merges of heavily overlapping shards
    can locally widen the bracket — which the bracket then reports
    honestly).  With ``n <= 2δ`` nothing is ever compressed and every
    quantile is exact.
    """

    def __init__(self, compression: int = DEFAULT_COMPRESSION) -> None:
        if compression < 1:
            raise ValueError(f"compression must be >= 1, got {compression}")
        self.compression = int(compression)
        self.count = 0
        self._centroids: List[List[float]] = []

    def add(self, value: float) -> None:
        """Fold one finite value."""
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"quantile sketch values must be finite: {value!r}")
        self._centroids.append([value, value, 1.0, value])
        self.count += 1
        if len(self._centroids) > 2 * self.compression:
            self._compress()

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch in; associative and commutative up to bounds."""
        self._centroids.extend([row[:] for row in other._centroids])
        self.count += other.count
        self._compress()

    def _compress(self) -> None:
        if not self._centroids:
            return
        rows = sorted(self._centroids, key=lambda row: (row[0], row[1]))
        limit = max(1.0, math.ceil(self.count / self.compression))
        merged: List[List[float]] = [rows[0][:]]
        for row in rows[1:]:
            head = merged[-1]
            overlapping = row[0] <= head[1]
            if overlapping or head[2] + row[2] <= limit:
                head[1] = max(head[1], row[1])
                head[2] += row[2]
                head[3] += row[3]
            else:
                merged.append(row[:])
        self._centroids = merged

    def __len__(self) -> int:
        return len(self._centroids)

    def _bracket(self, rank: float) -> Tuple[float, float]:
        """The centroid interval covering 0-based ``rank``."""
        cumulative = 0.0
        for lo, hi, weight, _ in self._centroids:
            if rank < cumulative + weight:
                return lo, hi
            cumulative += weight
        tail = self._centroids[-1]
        return tail[0], tail[1]

    def quantile_bounds(self, q: float) -> Tuple[float, float]:
        """Certified bracket: the exact q-quantile lies within it.

        The exact quantile (linear interpolation between order
        statistics, numpy's default) sits between the ``floor(r)``-th
        and ``ceil(r)``-th order statistics for ``r = q * (n - 1)``;
        each of those lives inside its covering centroid's interval.
        """
        if self.count == 0:
            raise ValueError("empty sketch has no quantiles")
        self._compress()
        q = min(max(q, 0.0), 1.0)
        rank = q * (self.count - 1)
        lo, _ = self._bracket(math.floor(rank))
        _, hi = self._bracket(math.ceil(rank))
        return lo, hi

    def _value_at(self, k: int) -> float:
        """Estimate for the 0-based ``k``-th order statistic.

        Inside a centroid the ``weight`` points are assumed evenly
        spread over ``[lo, hi]`` — exact for singleton centroids, so the
        whole sketch is exact while nothing has been compressed.
        """
        cumulative = 0.0
        for lo, hi, weight, _ in self._centroids:
            if k < cumulative + weight:
                if weight <= 1.0 or hi == lo:
                    return lo
                position = (k - cumulative) / (weight - 1.0)
                return lo + (hi - lo) * min(max(position, 0.0), 1.0)
            cumulative += weight
        return self._centroids[-1][1]

    def quantile(self, q: float) -> float:
        """Point estimate: linear interpolation between bracketing ranks."""
        if self.count == 0:
            raise ValueError("empty sketch has no quantiles")
        self._compress()
        q = min(max(q, 0.0), 1.0)
        rank = q * (self.count - 1)
        low = self._value_at(math.floor(rank))
        high = self._value_at(math.ceil(rank))
        if low == high:
            return low
        return low + (high - low) * (rank - math.floor(rank))

    def to_dict(self) -> Dict[str, Any]:
        self._compress()
        return {
            "compression": self.compression,
            "count": self.count,
            "centroids": [list(row) for row in self._centroids],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "QuantileSketch":
        sketch = cls(int(payload["compression"]))
        sketch.count = int(payload["count"])
        sketch._centroids = [
            [float(v) for v in row] for row in payload.get("centroids", [])
        ]
        return sketch


class MetricAccumulator:
    """Exact count/sum/min/max plus a quantile sketch for one metric."""

    def __init__(self, compression: int = DEFAULT_COMPRESSION) -> None:
        self.count = 0
        self._sum = Fraction(0)
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.sketch = QuantileSketch(compression)

    def add(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            return
        self.count += 1
        # Fractions make the sum exact, hence independent of fold order:
        # any sharding of the same records reports the bit-identical mean.
        self._sum += Fraction(value)
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.sketch.add(value)

    def merge(self, other: "MetricAccumulator") -> None:
        self.count += other.count
        self._sum += other._sum
        for bound in (other.min, other.max):
            if bound is None:
                continue
            self.min = bound if self.min is None else min(self.min, bound)
            self.max = bound if self.max is None else max(self.max, bound)
        self.sketch.merge(other.sketch)

    @property
    def mean(self) -> Optional[float]:
        if self.count == 0:
            return None
        return float(self._sum / self.count)

    def as_dict(self, percentiles: Sequence[float]) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }
        for q in percentiles:
            label = f"p{q * 100:g}".replace(".", "_")
            out[label] = self.sketch.quantile(q) if self.count else None
        return out


class StreamingAggregator:
    """Fold scenario records (or JSONL shards of them) into running stats."""

    def __init__(
        self,
        metrics: Sequence[str] = REPORT_METRICS,
        *,
        compression: int = DEFAULT_COMPRESSION,
    ) -> None:
        self.metrics = tuple(metrics)
        self.compression = int(compression)
        self.scenarios = 0
        self.status_counts: Dict[str, int] = {}
        self.error_kinds: Dict[str, int] = {}
        self.wall_s = 0.0
        self._accumulators: Dict[str, MetricAccumulator] = {
            metric: MetricAccumulator(compression) for metric in self.metrics
        }

    def fold_record(self, record: Dict[str, Any]) -> None:
        """Fold one scenario record (the shape ``run_scenario`` returns)."""
        self.scenarios += 1
        status = str(record.get("status", "failed"))
        self.status_counts[status] = self.status_counts.get(status, 0) + 1
        kind = record.get("error_kind")
        if kind is not None:
            kind = str(kind)
            self.error_kinds[kind] = self.error_kinds.get(kind, 0) + 1
        wall = record.get("wall_s")
        if isinstance(wall, (int, float)) and math.isfinite(wall):
            self.wall_s += float(wall)
        if status != "ok":
            return
        summary = record.get("result", {}).get("summary", {})
        for metric in self.metrics:
            value = summary.get(metric)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self._accumulators[metric].add(value)

    def fold_jsonl(self, path: Union[str, Path]) -> int:
        """Fold every record in a JSONL shard; returns records folded.

        Accepts worker increment shards and ``scenarios.jsonl`` report
        streams alike.  A trailing partial line (a worker killed
        mid-append) is skipped, not fatal.
        """
        folded = 0
        with Path(path).open() as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    self.fold_record(record)
                    folded += 1
        return folded

    def fold_paths(self, paths: Iterable[Union[str, Path]]) -> int:
        return sum(self.fold_jsonl(path) for path in paths)

    def merge(self, other: "StreamingAggregator") -> None:
        """Fold another aggregator in (associative shard reduction)."""
        if other.metrics != self.metrics:
            raise ValueError(
                f"cannot merge aggregators over different metrics: "
                f"{other.metrics} vs {self.metrics}"
            )
        self.scenarios += other.scenarios
        for status, count in other.status_counts.items():
            self.status_counts[status] = self.status_counts.get(status, 0) + count
        for kind, count in other.error_kinds.items():
            self.error_kinds[kind] = self.error_kinds.get(kind, 0) + count
        self.wall_s += other.wall_s
        for metric in self.metrics:
            self._accumulators[metric].merge(other._accumulators[metric])

    def accumulator(self, metric: str) -> MetricAccumulator:
        return self._accumulators[metric]

    def as_dict(
        self, percentiles: Sequence[float] = DEFAULT_PERCENTILES
    ) -> Dict[str, Any]:
        return {
            "schema": AGGREGATE_SCHEMA,
            "scenarios": self.scenarios,
            "status": dict(sorted(self.status_counts.items())),
            "error_kinds": dict(sorted(self.error_kinds.items())),
            "total_wall_s": self.wall_s,
            "metrics": {
                metric: self._accumulators[metric].as_dict(percentiles)
                for metric in self.metrics
            },
        }


__all__ = [
    "AGGREGATE_SCHEMA",
    "DEFAULT_COMPRESSION",
    "DEFAULT_PERCENTILES",
    "MetricAccumulator",
    "QuantileSketch",
    "StreamingAggregator",
]
