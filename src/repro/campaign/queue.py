"""Filesystem-backed shared scenario queue for distributed campaigns.

The queue is a directory any number of worker processes — on this host
or others sharing the filesystem (NFS, a job array's shared scratch) —
can attach to::

    <queue-dir>/
        queue.json                  manifest: format, salt, lease,
                                    run options, shared-store dir
        tasks/<id>.json             scenario payloads (atomic writes)
        claims/<id>.json            atomic claim files; mtime = heartbeat
        results/<id>.json           one result record per task (atomic)
        increments/<worker>.jsonl   streaming per-worker result increments
        closed                      marker: no more tasks are coming

**Claim protocol.**  A worker lists unfinished tasks and creates
``claims/<id>.json`` with ``O_CREAT | O_EXCL`` — the filesystem
guarantees exactly one winner per task.  While the scenario runs, a
background thread refreshes the claim's mtime (the heartbeat); the
result is written atomically and the claim removed.  A claim whose
mtime is older than the lease belongs to a presumed-dead worker: any
worker (or the coordinating executor) deletes it, after which the task
is claimable again.  Scenario execution is deterministic, so the rare
double execution when a slow worker races its own reclaimed task is
harmless — both sides write byte-identical results.

**Dedupe.**  Tasks carry their content-address key; workers consult the
shared artifact store (:mod:`repro.campaign.store`) before running and
publish fresh results back to it, so a fleet serving many campaigns
computes each distinct scenario once.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import subprocess
import sys
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.campaign.executors import (
    BaseExecutor,
    ExecutorBroken,
    ExecutorError,
    ScenarioRecord,
)
from repro.campaign.spec import DEFAULT_SALT, CampaignError, scenario_key
from repro.campaign.store import ArtifactStore

#: Manifest schema version; bump on incompatible layout changes.
QUEUE_FORMAT = 1

#: Default seconds before an unrefreshed claim is presumed dead.
DEFAULT_LEASE_S = 30.0


class QueueError(CampaignError):
    """Raised for malformed or missing queue directories."""


def _write_json_atomic(path: Path, payload: Dict[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True))
    os.replace(tmp, path)


def _read_json(path: Path) -> Optional[Dict[str, Any]]:
    """Parse a queue file; unreadable/corrupt (mid-write) reads are None."""
    try:
        record = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return record if isinstance(record, dict) else None


class ScenarioQueue:
    """One campaign's shared task/claim/result directory."""

    MANIFEST = "queue.json"
    CLOSED = "closed"

    def __init__(self, root: Union[str, Path], manifest: Dict[str, Any]) -> None:
        self.root = Path(root)
        self.manifest = manifest
        self.tasks_dir = self.root / "tasks"
        self.claims_dir = self.root / "claims"
        self.results_dir = self.root / "results"
        self.increments_dir = self.root / "increments"

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def create(
        cls,
        root: Union[str, Path],
        *,
        salt: str = DEFAULT_SALT,
        lease_s: float = DEFAULT_LEASE_S,
        store_dir: Optional[Union[str, Path]] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        options: Optional[Dict[str, Any]] = None,
    ) -> "ScenarioQueue":
        """Initialise a queue directory and write its manifest."""
        root = Path(root)
        if (root / cls.MANIFEST).exists():
            raise QueueError(f"queue already exists at {root}")
        manifest: Dict[str, Any] = {
            "format": QUEUE_FORMAT,
            "salt": salt,
            "lease_s": float(lease_s),
            "store_dir": str(store_dir) if store_dir is not None else None,
            "cache_dir": str(cache_dir) if cache_dir is not None else None,
            "options": dict(options or {}),
        }
        queue = cls(root, manifest)
        for directory in (
            queue.tasks_dir,
            queue.claims_dir,
            queue.results_dir,
            queue.increments_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)
        _write_json_atomic(root / cls.MANIFEST, manifest)
        return queue

    @classmethod
    def open(cls, root: Union[str, Path]) -> "ScenarioQueue":
        """Attach to an existing queue directory."""
        root = Path(root)
        manifest = _read_json(root / cls.MANIFEST)
        if manifest is None or manifest.get("format") != QUEUE_FORMAT:
            raise QueueError(f"no compatible queue manifest at {root / cls.MANIFEST}")
        return cls(root, manifest)

    def close(self) -> None:
        """Mark the queue complete: workers drain what is left and exit."""
        (self.root / self.CLOSED).touch()

    @property
    def is_closed(self) -> bool:
        return (self.root / self.CLOSED).exists()

    @property
    def lease_s(self) -> float:
        return float(self.manifest.get("lease_s", DEFAULT_LEASE_S))

    # -- tasks --------------------------------------------------------------

    def enqueue(self, task_id: str, payload: Dict[str, Any], key: str) -> None:
        """Publish one scenario; visible to workers once the rename lands."""
        _write_json_atomic(
            self.tasks_dir / f"{task_id}.json",
            {"id": task_id, "key": key, "scenario": payload},
        )

    def read_task(self, task_id: str) -> Optional[Dict[str, Any]]:
        return _read_json(self.tasks_dir / f"{task_id}.json")

    def task_ids(self) -> List[str]:
        if not self.tasks_dir.is_dir():
            return []
        return sorted(p.stem for p in self.tasks_dir.glob("*.json"))

    def unfinished(self) -> List[str]:
        return [tid for tid in self.task_ids() if not self.has_result(tid)]

    def claimable(self) -> List[str]:
        """Unfinished tasks with no live claim (stale claims excluded)."""
        now = time.time()
        out = []
        for tid in self.unfinished():
            age = self._claim_age(tid, now)
            if age is None or age > self.lease_s:
                out.append(tid)
        return out

    # -- claims -------------------------------------------------------------

    def _claim_path(self, task_id: str) -> Path:
        return self.claims_dir / f"{task_id}.json"

    def _claim_age(self, task_id: str, now: Optional[float] = None) -> Optional[float]:
        """Seconds since the claim's last heartbeat, or None when unclaimed."""
        try:
            mtime = self._claim_path(task_id).stat().st_mtime
        except OSError:
            return None
        return (now if now is not None else time.time()) - mtime

    def try_claim(self, task_id: str, worker: str) -> bool:
        """Atomically claim a task; exactly one caller wins."""
        path = self._claim_path(task_id)
        payload = json.dumps(
            {"worker": worker, "pid": os.getpid(), "host": socket.gethostname()}
        )
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return False
        except OSError:
            return False
        try:
            os.write(fd, payload.encode("utf-8"))
        finally:
            os.close(fd)
        return True

    def heartbeat(self, task_id: str) -> None:
        """Refresh a claim's lease (touch its mtime)."""
        try:
            os.utime(self._claim_path(task_id))
        except OSError:
            pass

    def release(self, task_id: str) -> None:
        try:
            self._claim_path(task_id).unlink()
        except OSError:
            pass

    def reclaim_stale(self, lease_s: Optional[float] = None) -> List[str]:
        """Drop claims whose lease expired; returns the reclaimed task ids.

        Deleting a stale claim is safe even when the original owner is
        merely slow: results are written atomically and deterministic
        scenarios make double execution byte-identical, so the worst
        case of a reclaim race is redundant work, never a wrong answer.
        """
        lease = self.lease_s if lease_s is None else float(lease_s)
        now = time.time()
        reclaimed = []
        for path in self.claims_dir.glob("*.json"):
            tid = path.stem
            if self.has_result(tid):
                # Finished task with a leftover claim (owner died between
                # result write and release): just tidy up.
                self.release(tid)
                continue
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue
            if age > lease:
                self.release(tid)
                reclaimed.append(tid)
        return reclaimed

    # -- results ------------------------------------------------------------

    def _result_path(self, task_id: str) -> Path:
        return self.results_dir / f"{task_id}.json"

    def has_result(self, task_id: str) -> bool:
        return self._result_path(task_id).is_file()

    def write_result(self, task_id: str, record: ScenarioRecord) -> None:
        _write_json_atomic(self._result_path(task_id), record)

    def read_result(self, task_id: str) -> Optional[ScenarioRecord]:
        return _read_json(self._result_path(task_id))

    def append_increment(self, worker: str, record: ScenarioRecord) -> None:
        """Append a result line to this worker's JSONL increment stream.

        Single-line ``O_APPEND`` writes keep the stream parseable even
        with many workers on one shared filesystem; the streaming
        aggregator (:mod:`repro.campaign.aggregate`) folds these shards
        without ever materialising the full result set.
        """
        self.increments_dir.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True) + "\n"
        with (self.increments_dir / f"{worker}.jsonl").open("a") as stream:
            stream.write(line)

    def increment_paths(self) -> List[Path]:
        if not self.increments_dir.is_dir():
            return []
        return sorted(self.increments_dir.glob("*.jsonl"))


class _Heartbeat(threading.Thread):
    """Background thread refreshing one claim's lease while a scenario runs."""

    def __init__(self, queue: ScenarioQueue, task_id: str, interval_s: float) -> None:
        super().__init__(daemon=True, name=f"heartbeat-{task_id}")
        self._queue = queue
        self._task_id = task_id
        self._interval_s = interval_s
        # Not named _stop: threading.Thread owns a private _stop() method
        # that join() calls internally.
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self._interval_s):
            self._queue.heartbeat(self._task_id)

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=1.0)


def _default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


def worker_loop(
    queue_dir: Union[str, Path],
    *,
    worker_id: Optional[str] = None,
    lease_s: Optional[float] = None,
    poll_s: float = 0.2,
    max_tasks: Optional[int] = None,
    exit_when_idle: bool = False,
    wait_for_queue_s: float = 60.0,
    store: Optional[ArtifactStore] = None,
    log: Optional[Callable[[str], None]] = None,
) -> int:
    """Pull scenarios from a shared queue until it drains; returns tasks run.

    This is the body of ``elastisim campaign worker``: claim, heartbeat,
    execute (or answer from the shared artifact store), publish, repeat.
    The loop also scavenges expired claims each pass, so a fleet heals
    itself after any member dies.  Exit conditions: the queue is closed
    and fully drained; ``exit_when_idle`` and nothing is claimable;
    ``max_tasks`` executed.
    """
    from repro.campaign.runner import run_scenario

    queue = _wait_for_queue(queue_dir, wait_for_queue_s, poll_s)
    wid = worker_id or _default_worker_id()
    lease = queue.lease_s if lease_s is None else float(lease_s)
    options = queue.manifest.get("options", {})
    if store is None:
        store_dir = queue.manifest.get("store_dir")
        cache_dir = queue.manifest.get("cache_dir")
        if store_dir or cache_dir:
            store = ArtifactStore(
                cache_dir,
                shared_root=store_dir,
                salt=queue.manifest.get("salt") or DEFAULT_SALT,
            )
    say = log or (lambda message: None)
    executed = 0

    while True:
        queue.reclaim_stale(lease)
        claimed: Optional[str] = None
        for tid in queue.claimable():
            if queue.try_claim(tid, wid):
                claimed = tid
                break
        if claimed is None:
            if queue.is_closed and not queue.unfinished():
                break
            if exit_when_idle and not queue.claimable():
                break
            time.sleep(poll_s)
            continue

        task = queue.read_task(claimed)
        if task is None:
            queue.release(claimed)
            time.sleep(poll_s)
            continue
        key = str(task.get("key", ""))
        record: Optional[ScenarioRecord] = None
        if store is not None and key:
            record = store.lookup(key)
        if record is not None:
            record = dict(record)
            record["cached"] = True
            say(f"{wid}: {claimed} answered from store")
        else:
            heartbeat = _Heartbeat(queue, claimed, max(lease / 5.0, 0.05))
            heartbeat.start()
            try:
                record = run_scenario(
                    task.get("scenario", {}),
                    options.get("trace_dir"),
                    bool(options.get("check_invariants", False)),
                    options.get("scenario_timeout"),
                )
            finally:
                heartbeat.stop()
            if store is not None and key:
                store.store(key, {k: v for k, v in record.items() if k != "trace"})
            say(f"{wid}: {claimed} {record.get('status', '?')}")
        queue.write_result(claimed, record)
        queue.append_increment(wid, {k: v for k, v in record.items() if k != "trace"})
        queue.release(claimed)
        executed += 1
        if max_tasks is not None and executed >= max_tasks:
            break
    return executed


def _wait_for_queue(
    queue_dir: Union[str, Path], wait_s: float, poll_s: float
) -> ScenarioQueue:
    """Open a queue, waiting for its manifest to appear.

    Workers routinely start *before* the coordinating campaign (the
    nightly distributed smoke does exactly this), so attachment tolerates
    a not-yet-created queue up to ``wait_s`` seconds.
    """
    deadline = time.monotonic() + max(0.0, wait_s)
    while True:
        try:
            return ScenarioQueue.open(queue_dir)
        except QueueError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(max(poll_s, 0.05))


def spawn_worker(
    queue_dir: Union[str, Path],
    *,
    worker_id: Optional[str] = None,
    lease_s: Optional[float] = None,
    extra_args: Sequence[str] = (),
) -> "subprocess.Popen[bytes]":
    """Start a local ``elastisim campaign worker`` subprocess.

    The child inherits the current interpreter and gets ``repro``'s
    parent directory prepended to ``PYTHONPATH``, so spawning works from
    source checkouts and installed environments alike.
    """
    import repro

    args = [
        sys.executable,
        "-m",
        "repro",
        "campaign",
        "worker",
        "--queue-dir",
        str(queue_dir),
    ]
    if worker_id is not None:
        args += ["--worker-id", worker_id]
    if lease_s is not None:
        args += ["--lease", str(lease_s)]
    args += list(extra_args)
    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing else package_root + os.pathsep + existing
    )
    return subprocess.Popen(
        args, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=env
    )


class QueueWorkerExecutor(BaseExecutor):
    """Distributed executor: scenarios flow through a shared queue.

    ``workers`` local worker processes are spawned on construction
    (``workers=0`` relies entirely on externally started workers —
    ``elastisim campaign worker --queue-dir`` on any host sharing the
    filesystem).  ``submit`` enqueues and then polls for the result
    file; the executor also scavenges expired claims, so scenarios
    orphaned by a killed worker are re-claimed by the rest of the fleet.
    If every *spawned* worker dies and no external worker picks a task
    up within a lease, the submit raises :class:`ExecutorBroken` and the
    runner re-runs that scenario in-process.
    """

    name = "queue-worker"
    parallel = True
    isolates_processes = True
    distributed = True

    def __init__(
        self,
        *,
        queue_dir: Optional[Union[str, Path]] = None,
        workers: int = 0,
        lease_s: float = DEFAULT_LEASE_S,
        poll_s: float = 0.05,
        salt: str = DEFAULT_SALT,
        store_dir: Optional[Union[str, Path]] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        run_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        if queue_dir is None:
            raise ExecutorError("queue-worker executor needs queue_dir")
        self._poll_s = max(float(poll_s), 0.01)
        self._lease_s = float(lease_s)
        self._salt = salt
        self.queue = ScenarioQueue.create(
            queue_dir,
            salt=salt,
            lease_s=lease_s,
            store_dir=store_dir,
            cache_dir=cache_dir,
            options=run_options,
        )
        self._counter = 0
        self._spawn_requested = int(workers)
        self._spawned: List["subprocess.Popen[bytes]"] = [
            spawn_worker(self.queue.root) for _ in range(max(0, int(workers)))
        ]

    def _fleet_dead(self) -> bool:
        """True when local workers were requested and all have exited."""
        return self._spawn_requested > 0 and all(
            proc.poll() is not None for proc in self._spawned
        )

    async def submit(
        self, fn: Callable[..., ScenarioRecord], /, *args: Any
    ) -> ScenarioRecord:
        # Remote workers always execute the canonical entry point; the
        # protocol's fn is accepted for uniformity but must match it.
        from repro.campaign.runner import run_scenario

        if fn is not run_scenario:
            raise ExecutorError("queue-worker executor can only run run_scenario")
        payload = args[0]
        self._counter += 1
        task_id = f"{self._counter:06d}"
        # Content address of the physics part (labels excluded), matching
        # the runner's cache keys: workers dedupe through the shared store
        # on exactly the same addresses.
        spec_part = {k: v for k, v in payload.items() if k not in ("name", "params")}
        key = scenario_key(spec_part, salt=self._salt)
        self.queue.enqueue(task_id, payload, key)
        grace_until: Optional[float] = None
        while True:
            record = self.queue.read_result(task_id)
            if record is not None:
                return record
            # Executor-side scavenging: even a fleet of one dead worker
            # cannot strand a claim past its lease.
            self.queue.reclaim_stale()
            if self._fleet_dead():
                # Give external workers one lease to pick the task up
                # before declaring it lost.
                now = time.monotonic()
                if grace_until is None:
                    grace_until = now + self._lease_s
                elif now >= grace_until:
                    raise ExecutorBroken(
                        f"all spawned queue workers exited with task "
                        f"{task_id} unfinished"
                    )
            await asyncio.sleep(self._poll_s)

    async def shutdown(self, cancel: bool = False) -> None:
        self.queue.close()
        deadline = time.monotonic() + (0.0 if cancel else 10.0)
        for proc in self._spawned:
            while proc.poll() is None and time.monotonic() < deadline:
                await asyncio.sleep(0.05)
            if proc.poll() is None:
                proc.terminate()
        for proc in self._spawned:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()


__all__ = [
    "DEFAULT_LEASE_S",
    "QUEUE_FORMAT",
    "QueueError",
    "QueueWorkerExecutor",
    "ScenarioQueue",
    "spawn_worker",
    "worker_loop",
]
