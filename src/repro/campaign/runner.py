"""Parallel campaign execution with cache reuse and failure isolation.

:class:`CampaignRunner` takes an expanded scenario list and produces a
:class:`CampaignReport`:

* cache hits are answered without touching a worker;
* misses fan out over a :class:`~concurrent.futures.ProcessPoolExecutor`
  (``workers <= 1`` degrades to a plain in-process loop — same results,
  same report);
* one crashing scenario is recorded as ``status="failed"`` and the rest
  of the campaign carries on, including after a hard worker death
  (:class:`~concurrent.futures.process.BrokenProcessPool`).

Scenario records keep the deterministic physics (``result``) strictly
separated from volatile run metadata (``wall_s``, ``cached``): the same
spec and seed always produce a byte-identical ``result`` section, which
is what the regression checker (:mod:`repro.campaign.compare`) diffs.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import Future, ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.campaign.cache import ResultCache
from repro.campaign.spec import DEFAULT_SALT, CampaignError, ScenarioSpec, canonical_json

#: Metrics promoted from the summary into aggregate report rows.
REPORT_METRICS = (
    "makespan",
    "mean_wait",
    "mean_bounded_slowdown",
    "mean_utilization",
    "completed_jobs",
    "killed_jobs",
    "total_reconfigurations",
)


def _pin_engine(engine: Optional[Dict[str, Any]]) -> Callable[[], None]:
    """Apply a scenario's engine-pinning block; returns the undo hook.

    Pins select *how* the scenario executes — the backends produce
    byte-identical ``run_record`` payloads — and are always undone,
    because with ``workers <= 1`` the runner executes scenarios in the
    caller's process and must not leak mode changes.
    """
    if not engine:
        return lambda: None
    import repro.sharing.model as sharing_model
    from repro.expressions import compiled_enabled, set_compiled_enabled
    from repro.sharing import array_engine_enabled, set_array_engine_enabled

    old_compiled = compiled_enabled()
    old_vectorize = sharing_model.DEFAULT_VECTORIZE
    old_array = array_engine_enabled()
    if "compiled" in engine:
        set_compiled_enabled(bool(engine["compiled"]))
    if "vectorize" in engine:
        value = engine["vectorize"]
        sharing_model.DEFAULT_VECTORIZE = None if value is None else bool(value)
    if "array_engine" in engine:
        set_array_engine_enabled(bool(engine["array_engine"]))

    def restore() -> None:
        set_compiled_enabled(old_compiled)
        sharing_model.DEFAULT_VECTORIZE = old_vectorize
        set_array_engine_enabled(old_array)

    return restore


def run_scenario(
    scenario: Dict[str, Any],
    trace_dir: Optional[str] = None,
    check_invariants: bool = False,
) -> Dict[str, Any]:
    """Execute one scenario record end to end (runs inside workers).

    Never raises: any failure — bad spec, unknown algorithm, stalled
    simulation — comes back as a ``status="failed"`` record so a single
    rotten grid point cannot take down the campaign.  With ``trace_dir``
    each scenario additionally writes ``<name>.trace.jsonl`` there; with
    ``check_invariants`` the flight-recorder invariant checker audits the
    run and failures come back as ``status="invariant_violation"`` with
    the individual violations attached.  An ``engine`` block in the
    scenario pins performance backends for the duration of the run.
    """
    started = time.perf_counter()
    record: Dict[str, Any] = {
        "name": scenario.get("name", "scenario"),
        "params": scenario.get("params", {}),
    }
    try:
        from repro.batch import Simulation

        restore_engine = _pin_engine(scenario.get("engine"))
        try:
            sim = Simulation.from_spec(scenario)
            until = scenario.get("sim", {}).get("until")
            trace: Optional[Path] = None
            if trace_dir is not None:
                directory = Path(trace_dir)
                directory.mkdir(parents=True, exist_ok=True)
                trace = directory / f"{_safe_name(record['name'])}.trace.jsonl"
                record["trace"] = str(trace)
            try:
                monitor = sim.run(
                    until=until, trace=trace, check_invariants=check_invariants
                )
            except Exception as exc:
                from repro.tracing import InvariantViolation

                if not isinstance(exc, InvariantViolation):
                    raise
                record["status"] = "invariant_violation"
                record["error"] = str(exc)
                record["violations"] = [v.as_dict() for v in exc.violations]
            else:
                result = monitor.run_record()
                result["invocations"] = sim.batch.invocations
                record["status"] = "ok"
                record["result"] = result
        finally:
            restore_engine()
    except Exception as exc:  # noqa: BLE001 - isolation boundary by design
        record["status"] = "failed"
        record["error"] = f"{type(exc).__name__}: {exc}"
    record["wall_s"] = time.perf_counter() - started
    return record


def _safe_name(name: str) -> str:
    """Scenario name → filesystem-safe trace file stem."""
    return "".join(c if c.isalnum() or c in "._-" else "_" for c in name) or "scenario"


class CampaignReport:
    """Ordered scenario records plus campaign-level accounting."""

    def __init__(
        self,
        name: str,
        records: List[Dict[str, Any]],
        *,
        wall_s: float,
        cache_hits: int,
        executed: int,
        workers: int,
    ) -> None:
        self.name = name
        self.records = records
        self.wall_s = wall_s
        self.cache_hits = cache_hits
        self.executed = executed
        self.workers = workers

    @property
    def failed(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r.get("status") != "ok"]

    @property
    def ok(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r.get("status") == "ok"]

    def rows(self, metrics: Sequence[str] = REPORT_METRICS) -> List[List[Any]]:
        """Aggregate table rows: one per scenario, labels then metrics."""
        rows = []
        for record in self.records:
            summary = record.get("result", {}).get("summary", {})
            rows.append(
                [record["name"], record.get("status", "failed")]
                + [summary.get(metric) for metric in metrics]
            )
        return rows

    def header(self, metrics: Sequence[str] = REPORT_METRICS) -> List[str]:
        return ["scenario", "status", *metrics]

    def as_dict(self, metrics: Sequence[str] = REPORT_METRICS) -> Dict[str, Any]:
        """Aggregate report, same shape as ``BENCH_*.json`` artefacts."""
        header = self.header(metrics)
        return {
            "bench": f"campaign_{self.name}",
            "title": f"campaign {self.name}",
            "header": header,
            "rows": [dict(zip(header, row)) for row in self.rows(metrics)],
            "campaign": {
                "name": self.name,
                "scenarios": len(self.records),
                "failed": len(self.failed),
                "cache_hits": self.cache_hits,
                "executed": self.executed,
                "workers": self.workers,
                "wall_s": self.wall_s,
            },
        }

    def write(self, output_dir: Union[str, Path]) -> Dict[str, Path]:
        """Write ``scenarios.jsonl`` + aggregate ``campaign.json``.

        The JSONL stream carries the full per-scenario records (canonical
        spec included); the aggregate is the compact table CI diffs.
        """
        out = Path(output_dir)
        out.mkdir(parents=True, exist_ok=True)
        jsonl = out / "scenarios.jsonl"
        with jsonl.open("w") as stream:
            for record in self.records:
                stream.write(json.dumps(record, sort_keys=True))
                stream.write("\n")
        aggregate = out / "campaign.json"
        aggregate.write_text(json.dumps(self.as_dict(), indent=2))
        return {"scenarios": jsonl, "aggregate": aggregate}


class CampaignRunner:
    """Run a scenario grid in parallel, reusing cached results."""

    def __init__(
        self,
        scenarios: Sequence[ScenarioSpec],
        *,
        name: str = "campaign",
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        force: bool = False,
        salt: str = DEFAULT_SALT,
        trace_dir: Optional[Union[str, Path]] = None,
        check_invariants: bool = False,
    ) -> None:
        if not scenarios:
            raise CampaignError("campaign has no scenarios")
        names = [s.name for s in scenarios]
        if len(set(names)) != len(names):
            raise CampaignError("scenario names must be unique within a campaign")
        self.scenarios = list(scenarios)
        self.name = name
        self.workers = max(1, int(workers)) if workers is not None else _default_workers()
        self.cache = cache
        self.force = force
        self.trace_dir = str(trace_dir) if trace_dir is not None else None
        self.check_invariants = check_invariants
        # Checked and unchecked runs must not share cache entries: a
        # cached plain record would silently skip the invariant audit.
        self.salt = salt + "+invariants" if check_invariants else salt

    def run(
        self,
        progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> CampaignReport:
        started = time.perf_counter()
        payloads = [scenario.as_record() for scenario in self.scenarios]
        keys = [scenario.key(salt=self.salt) for scenario in self.scenarios]
        records: List[Optional[Dict[str, Any]]] = [None] * len(payloads)

        pending: List[int] = []
        cache_hits = 0
        for index, key in enumerate(keys):
            cached = None
            # A cache hit has no trace file to offer; when tracing, every
            # scenario must actually execute.
            if self.cache is not None and not self.force and self.trace_dir is None:
                cached = self.cache.lookup(key)
            if cached is not None:
                cached["cached"] = True
                # Labels may legitimately differ between campaigns sharing
                # a cache: this campaign's names win.
                cached["name"] = payloads[index]["name"]
                cached["params"] = payloads[index]["params"]
                records[index] = cached
                cache_hits += 1
                if progress is not None:
                    progress(cached)
            else:
                pending.append(index)

        def finish(index: int, record: Dict[str, Any]) -> None:
            record.setdefault("cached", False)
            record["key"] = keys[index]
            record["scenario"] = payloads[index]
            records[index] = record
            if self.cache is not None:
                # Trace paths are per-invocation artefacts; a future cache
                # hit must not advertise a file it never wrote.
                stored = {k: v for k, v in record.items() if k != "trace"}
                self.cache.store(keys[index], stored)
            if progress is not None:
                progress(record)

        if self.workers <= 1 or len(pending) <= 1:
            for index in pending:
                finish(
                    index,
                    run_scenario(
                        payloads[index], self.trace_dir, self.check_invariants
                    ),
                )
        else:
            self._run_pool(payloads, pending, finish)

        final = [r for r in records if r is not None]
        assert len(final) == len(payloads)
        return CampaignReport(
            self.name,
            final,
            wall_s=time.perf_counter() - started,
            cache_hits=cache_hits,
            executed=len(pending),
            workers=self.workers,
        )

    def _run_pool(
        self,
        payloads: List[Dict[str, Any]],
        pending: List[int],
        finish: Callable[[int, Dict[str, Any]], None],
    ) -> None:
        """Fan pending scenarios out over a process pool.

        ``run_scenario`` already converts ordinary exceptions into failed
        records inside the worker, so the only thing that reaches this
        level is a worker dying hard (OOM kill, segfault) — which poisons
        every in-flight future with :class:`BrokenProcessPool`.  The
        scenarios left hanging are re-run in-process, where the same
        per-scenario isolation applies, instead of killing the campaign.
        """
        completed: set = set()
        futures: Dict[Future, int] = {}
        try:
            with ProcessPoolExecutor(max_workers=min(self.workers, len(pending))) as pool:
                for index in pending:
                    futures[
                        pool.submit(
                            run_scenario,
                            payloads[index],
                            self.trace_dir,
                            self.check_invariants,
                        )
                    ] = index
                for future in as_completed(futures):
                    index = futures[future]
                    finish(index, future.result())
                    completed.add(index)
        except BrokenProcessPool:
            pass
        for index in pending:
            if index not in completed:
                finish(
                    index,
                    run_scenario(
                        payloads[index], self.trace_dir, self.check_invariants
                    ),
                )


def result_fingerprint(record: Dict[str, Any]) -> str:
    """Canonical serialisation of the deterministic part of a record.

    Two runs of the same scenario spec — serial or parallel, cached or
    fresh — must agree byte-for-byte on this string.
    """
    return canonical_json(record.get("result", {}))


def _default_workers() -> int:
    import os

    return os.cpu_count() or 1


__all__ = [
    "REPORT_METRICS",
    "CampaignReport",
    "CampaignRunner",
    "result_fingerprint",
    "run_scenario",
]
