"""Campaign execution over pluggable executors, with caching and isolation.

:class:`CampaignRunner` takes an expanded scenario list and produces a
:class:`CampaignReport`:

* cache hits are answered without touching a worker;
* misses fan out over a pluggable backend
  (:mod:`repro.campaign.executors`): ``in-process``, ``process-pool``
  (the default), ``asyncio``, or the distributed ``queue-worker`` —
  ``workers <= 1`` degrades to a plain in-process loop, same results,
  same report;
* one crashing scenario is recorded as ``status="failed"`` and the rest
  of the campaign carries on, including after a hard backend death
  (:class:`~repro.campaign.executors.ExecutorBroken`): the stranded
  scenarios are re-run in-process;
* a scenario overrunning ``scenario_timeout`` seconds is recorded as
  ``failed`` with ``error_kind: "timeout"`` instead of hanging the sweep.

Scenario records keep the deterministic physics (``result``) strictly
separated from volatile run metadata (``wall_s``, ``cached``): the same
spec and seed always produce a byte-identical ``result`` section — on
*every* executor — which is what the regression checker
(:mod:`repro.campaign.compare`) diffs.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Union

from repro.campaign.cache import ResultCache
from repro.campaign.executors import (
    BaseExecutor,
    ExecutorBroken,
    executor_names,
    make_executor,
)
from repro.campaign.spec import DEFAULT_SALT, CampaignError, ScenarioSpec, canonical_json

#: Metrics promoted from the summary into aggregate report rows.
REPORT_METRICS = (
    "makespan",
    "mean_wait",
    "mean_turnaround",
    "p95_turnaround",
    "mean_bounded_slowdown",
    "mean_utilization",
    "completed_jobs",
    "killed_jobs",
    "total_reconfigurations",
)

#: Backend used when parallelism is wanted and none was named.
DEFAULT_EXECUTOR = "process-pool"


class ScenarioTimeout(BaseException):
    """A scenario overran its per-scenario deadline.

    Deliberately a ``BaseException``: the deadline is delivered
    asynchronously (``PyThreadState_SetAsyncExc``) and can surface at
    *any* bytecode boundary, including inside a simulation process
    generator.  Engine code catches ``Exception`` to convert process
    crashes into failed events — a timeout must tunnel through those
    handlers (like ``KeyboardInterrupt``) or a defused process failure
    silently swallows the injection and the scenario runs unbounded.
    """


#: Seconds between repeat injections once a deadline has expired.
_REINJECT_INTERVAL = 0.05


@contextmanager
def _scenario_deadline(timeout: Optional[float]) -> Iterator[None]:
    """Raise :class:`ScenarioTimeout` in this thread after ``timeout`` seconds.

    A watchdog thread injects the exception into the scenario thread with
    ``PyThreadState_SetAsyncExc``; delivery happens at the next bytecode
    boundary, which the pure-Python simulation loop crosses constantly.
    Asynchronous delivery is inherently lossy — the pending exception can
    be consumed by whatever ``except`` clause happens to enclose the
    boundary it lands on, or silently discarded as unraisable when it
    lands inside a GC callback (observed in practice: a deadline vanished
    into a callback registered by a test dependency) — so a single
    injection is not a deadline, it is a coin flip.  The watchdog
    therefore keeps re-injecting every :data:`_REINJECT_INTERVAL` seconds
    until the scenario frame actually unwinds and releases it; a stream
    of injections cannot be swallowed transiently.  The same mechanism
    serves every executor: the serial runner (main thread), process-pool
    and queue workers (their own main threads), and the asyncio
    executor's ``to_thread`` workers, where signals would be unusable
    anyway.
    """
    if timeout is None or timeout <= 0:
        yield
        return
    import ctypes

    set_async_exc = ctypes.pythonapi.PyThreadState_SetAsyncExc
    target = ctypes.c_ulong(threading.get_ident())
    finished = threading.Event()

    def _watchdog() -> None:
        if finished.wait(float(timeout)):
            return
        while not finished.is_set():
            set_async_exc(target, ctypes.py_object(ScenarioTimeout))
            if finished.wait(_REINJECT_INTERVAL):
                return

    watchdog = threading.Thread(target=_watchdog, daemon=True, name="scenario-deadline")
    watchdog.start()
    try:
        yield
    finally:
        try:
            finished.set()
            watchdog.join()
            # An injection that lost the race with scenario completion is
            # still pending on this thread.  Spin across enough bytecode
            # boundaries for it to land here, and absorb it — this is the
            # only safe disposal: clearing it with
            # ``PyThreadState_SetAsyncExc(tid, NULL)`` leaves the
            # interpreter's eval-breaker permanently signalled on CPython
            # 3.11, which silently degrades every later profiled run into
            # a near-livelock.
            for _ in range(10000):
                pass
        except ScenarioTimeout:
            pass


def _pin_engine(engine: Optional[Dict[str, Any]]) -> Callable[[], None]:
    """Apply a scenario's engine-pinning block; returns the undo hook.

    Pins select *how* the scenario executes — the backends produce
    byte-identical ``run_record`` payloads — and are always undone,
    because with ``workers <= 1`` the runner executes scenarios in the
    caller's process and must not leak mode changes.
    """
    if not engine:
        return lambda: None
    import repro.sharing.model as sharing_model
    from repro.expressions import compiled_enabled, set_compiled_enabled
    from repro.sharing import array_engine_enabled, set_array_engine_enabled

    old_compiled = compiled_enabled()
    old_vectorize = sharing_model.DEFAULT_VECTORIZE
    old_array = array_engine_enabled()
    if "compiled" in engine:
        set_compiled_enabled(bool(engine["compiled"]))
    if "vectorize" in engine:
        value = engine["vectorize"]
        sharing_model.DEFAULT_VECTORIZE = None if value is None else bool(value)
    if "array_engine" in engine:
        set_array_engine_enabled(bool(engine["array_engine"]))

    def restore() -> None:
        set_compiled_enabled(old_compiled)
        sharing_model.DEFAULT_VECTORIZE = old_vectorize
        set_array_engine_enabled(old_array)

    return restore


def run_scenario(
    scenario: Dict[str, Any],
    trace_dir: Optional[str] = None,
    check_invariants: bool = False,
    timeout: Optional[float] = None,
) -> Dict[str, Any]:
    """Execute one scenario record end to end (runs inside workers).

    Never raises: any failure — bad spec, unknown algorithm, stalled
    simulation — comes back as a ``status="failed"`` record so a single
    rotten grid point cannot take down the campaign.  Failed records
    carry ``error_kind`` (``"timeout"`` when ``timeout`` seconds elapsed,
    ``"exception"`` otherwise).  With ``trace_dir`` each scenario
    additionally writes ``<name>.trace.jsonl`` there; with
    ``check_invariants`` the flight-recorder invariant checker audits the
    run and failures come back as ``status="invariant_violation"`` with
    the individual violations attached.  An ``engine`` block in the
    scenario pins performance backends for the duration of the run.
    """
    started = time.perf_counter()
    record: Dict[str, Any] = {
        "name": scenario.get("name", "scenario"),
        "params": scenario.get("params", {}),
    }
    try:
        from repro.batch import Simulation

        restore_engine = _pin_engine(scenario.get("engine"))
        try:
            with _scenario_deadline(timeout):
                sim = Simulation.from_spec(scenario)
                until = scenario.get("sim", {}).get("until")
                trace: Optional[Path] = None
                if trace_dir is not None:
                    directory = Path(trace_dir)
                    directory.mkdir(parents=True, exist_ok=True)
                    trace = directory / f"{_safe_name(record['name'])}.trace.jsonl"
                    record["trace"] = str(trace)
                try:
                    monitor = sim.run(
                        until=until, trace=trace, check_invariants=check_invariants
                    )
                except Exception as exc:
                    from repro.tracing import InvariantViolation

                    if not isinstance(exc, InvariantViolation):
                        raise
                    record["status"] = "invariant_violation"
                    record["error"] = str(exc)
                    record["violations"] = [v.as_dict() for v in exc.violations]
                else:
                    result = monitor.run_record()
                    result["invocations"] = sim.batch.invocations
                    record["status"] = "ok"
                    record["result"] = result
        finally:
            restore_engine()
    except ScenarioTimeout as exc:
        record["status"] = "failed"
        record["error"] = f"ScenarioTimeout: {exc}"
        record["error_kind"] = "timeout"
    except Exception as exc:  # noqa: BLE001 - isolation boundary by design
        record["status"] = "failed"
        record["error"] = f"{type(exc).__name__}: {exc}"
        record["error_kind"] = "exception"
    record["wall_s"] = time.perf_counter() - started
    return record


def run_scenario_warm(
    scenario: Dict[str, Any],
    session: Any,
    timeout: Optional[float] = None,
) -> Dict[str, Any]:
    """Warm-start variant of :func:`run_scenario` (serial in-process only).

    ``session`` is a :class:`repro.replay.WhatIfSession`: the first
    scenario of each compatibility group (identical spec apart from its
    inline jobs) is cold-run with periodic snapshots, later members
    restore the latest checkpoint before their workload diverges and
    replay only the suffix.  Results are byte-identical to cold runs;
    records gain ``warm_start`` (and ``events_saved`` when warm).  The
    same isolation contract as :func:`run_scenario` applies: failures
    come back as ``status="failed"`` records, never exceptions.
    """
    started = time.perf_counter()
    record: Dict[str, Any] = {
        "name": scenario.get("name", "scenario"),
        "params": scenario.get("params", {}),
    }
    try:
        restore_engine = _pin_engine(scenario.get("engine"))
        try:
            with _scenario_deadline(timeout):
                outcome = session.run(scenario)
        finally:
            restore_engine()
        record["status"] = "ok"
        record["result"] = outcome.record
        record["warm_start"] = outcome.warm
        if outcome.warm:
            record["events_saved"] = outcome.events_saved
    except ScenarioTimeout as exc:
        record["status"] = "failed"
        record["error"] = f"ScenarioTimeout: {exc}"
        record["error_kind"] = "timeout"
    except Exception as exc:  # noqa: BLE001 - isolation boundary by design
        record["status"] = "failed"
        record["error"] = f"{type(exc).__name__}: {exc}"
        record["error_kind"] = "exception"
    record["wall_s"] = time.perf_counter() - started
    return record


def _safe_name(name: str) -> str:
    """Scenario name → filesystem-safe trace file stem."""
    return "".join(c if c.isalnum() or c in "._-" else "_" for c in name) or "scenario"


class CampaignReport:
    """Ordered scenario records plus campaign-level accounting."""

    def __init__(
        self,
        name: str,
        records: List[Dict[str, Any]],
        *,
        wall_s: float,
        cache_hits: int,
        executed: int,
        workers: int,
        executor: str = "serial",
    ) -> None:
        self.name = name
        self.records = records
        self.wall_s = wall_s
        self.cache_hits = cache_hits
        self.executed = executed
        self.workers = workers
        self.executor = executor

    @property
    def failed(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r.get("status") != "ok"]

    @property
    def ok(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r.get("status") == "ok"]

    def rows(self, metrics: Sequence[str] = REPORT_METRICS) -> List[List[Any]]:
        """Aggregate table rows: one per scenario, labels then metrics."""
        rows = []
        for record in self.records:
            summary = record.get("result", {}).get("summary", {})
            rows.append(
                [record["name"], record.get("status", "failed")]
                + [summary.get(metric) for metric in metrics]
            )
        return rows

    def header(self, metrics: Sequence[str] = REPORT_METRICS) -> List[str]:
        return ["scenario", "status", *metrics]

    def as_dict(self, metrics: Sequence[str] = REPORT_METRICS) -> Dict[str, Any]:
        """Aggregate report, same shape as ``BENCH_*.json`` artefacts."""
        header = self.header(metrics)
        return {
            "bench": f"campaign_{self.name}",
            "title": f"campaign {self.name}",
            "header": header,
            "rows": [dict(zip(header, row)) for row in self.rows(metrics)],
            "campaign": {
                "name": self.name,
                "scenarios": len(self.records),
                "failed": len(self.failed),
                "cache_hits": self.cache_hits,
                "executed": self.executed,
                "workers": self.workers,
                "executor": self.executor,
                "wall_s": self.wall_s,
            },
        }

    def write(self, output_dir: Union[str, Path]) -> Dict[str, Path]:
        """Write ``scenarios.jsonl`` + aggregate ``campaign.json``.

        The JSONL stream carries the full per-scenario records (canonical
        spec included); the aggregate is the compact table CI diffs.
        """
        out = Path(output_dir)
        out.mkdir(parents=True, exist_ok=True)
        jsonl = out / "scenarios.jsonl"
        with jsonl.open("w") as stream:
            for record in self.records:
                stream.write(json.dumps(record, sort_keys=True))
                stream.write("\n")
        aggregate = out / "campaign.json"
        aggregate.write_text(json.dumps(self.as_dict(), indent=2))
        return {"scenarios": jsonl, "aggregate": aggregate}


class CampaignRunner:
    """Run a scenario grid over a pluggable executor, reusing cached results."""

    def __init__(
        self,
        scenarios: Sequence[ScenarioSpec],
        *,
        name: str = "campaign",
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        force: bool = False,
        salt: str = DEFAULT_SALT,
        trace_dir: Optional[Union[str, Path]] = None,
        check_invariants: bool = False,
        executor: Union[str, BaseExecutor, None] = None,
        executor_options: Optional[Dict[str, Any]] = None,
        scenario_timeout: Optional[float] = None,
        warm_start: bool = False,
    ) -> None:
        if not scenarios:
            raise CampaignError("campaign has no scenarios")
        names = [s.name for s in scenarios]
        if len(set(names)) != len(names):
            raise CampaignError("scenario names must be unique within a campaign")
        self.scenarios = list(scenarios)
        self.name = name
        self.workers = max(1, int(workers)) if workers is not None else _default_workers()
        self.cache = cache
        self.force = force
        self.trace_dir = str(trace_dir) if trace_dir is not None else None
        self.check_invariants = check_invariants
        # Checked and unchecked runs must not share cache entries: a
        # cached plain record would silently skip the invariant audit.
        self.salt = salt + "+invariants" if check_invariants else salt
        if scenario_timeout is not None and float(scenario_timeout) <= 0:
            raise CampaignError(
                f"scenario_timeout must be positive, got {scenario_timeout!r}"
            )
        self.scenario_timeout = (
            float(scenario_timeout) if scenario_timeout is not None else None
        )
        if isinstance(executor, BaseExecutor):
            self.executor: Optional[BaseExecutor] = executor
            self.executor_name: Optional[str] = executor.name
        else:
            self.executor = None
            if executor is not None and executor not in executor_names():
                raise CampaignError(
                    f"unknown executor {executor!r} "
                    f"(available: {', '.join(executor_names())})"
                )
            self.executor_name = executor
        self.executor_options = dict(executor_options or {})
        self.warm_start = bool(warm_start)
        if self.warm_start:
            # Warm starts share one snapshot cache, so they run serially
            # in-process; snapshots also cannot coexist with the flight
            # recorder, ruling out tracing and invariant audits.
            if self.executor is not None or self.executor_name is not None:
                raise CampaignError(
                    "warm_start runs serially in-process and cannot be "
                    "combined with an explicit executor"
                )
            if self.trace_dir is not None or check_invariants:
                raise CampaignError(
                    "warm_start is incompatible with tracing and invariant "
                    "checks (snapshots cannot be taken from a traced run)"
                )
            self.salt = self.salt + "+warm"

    def run(
        self,
        progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> CampaignReport:
        started = time.perf_counter()
        payloads = [scenario.as_record() for scenario in self.scenarios]
        keys = [scenario.key(salt=self.salt) for scenario in self.scenarios]
        records: List[Optional[Dict[str, Any]]] = [None] * len(payloads)

        pending: List[int] = []
        cache_hits = 0
        for index, key in enumerate(keys):
            cached = None
            # A cache hit has no trace file to offer; when tracing, every
            # scenario must actually execute.
            if self.cache is not None and not self.force and self.trace_dir is None:
                cached = self.cache.lookup(key)
            if cached is not None:
                cached["cached"] = True
                # Labels may legitimately differ between campaigns sharing
                # a cache: this campaign's names win.
                cached["name"] = payloads[index]["name"]
                cached["params"] = payloads[index]["params"]
                records[index] = cached
                cache_hits += 1
                if progress is not None:
                    progress(cached)
            else:
                pending.append(index)

        def finish(index: int, record: Dict[str, Any]) -> None:
            record.setdefault("cached", False)
            record["key"] = keys[index]
            record["scenario"] = payloads[index]
            records[index] = record
            if self.cache is not None:
                # Trace paths are per-invocation artefacts; a future cache
                # hit must not advertise a file it never wrote.
                stored = {k: v for k, v in record.items() if k != "trace"}
                self.cache.store(keys[index], stored)
            if progress is not None:
                progress(record)

        explicit = self.executor is not None or self.executor_name is not None
        if not pending:
            label = "cache"
        elif self.warm_start:
            # Serial by design: every scenario feeds (or reuses) the shared
            # snapshot cache, so later grid points replay only their suffix.
            label = "serial+warm-start"
            from repro.replay import WhatIfSession

            session = WhatIfSession()
            for index in pending:
                finish(
                    index,
                    run_scenario_warm(
                        payloads[index], session, self.scenario_timeout
                    ),
                )
        elif not explicit and (self.workers <= 1 or len(pending) <= 1):
            # No executor machinery for trivially serial work: the plain
            # loop keeps debugging transparent and avoids event-loop setup.
            label = "serial"
            for index in pending:
                finish(
                    index,
                    run_scenario(
                        payloads[index],
                        self.trace_dir,
                        self.check_invariants,
                        self.scenario_timeout,
                    ),
                )
        else:
            label = self._dispatch(payloads, pending, finish)

        final = [r for r in records if r is not None]
        assert len(final) == len(payloads)
        return CampaignReport(
            self.name,
            final,
            wall_s=time.perf_counter() - started,
            cache_hits=cache_hits,
            executed=len(pending),
            workers=self.workers,
            executor=label,
        )

    # -- executor dispatch ---------------------------------------------------

    def _build_executor(self, pending_count: int) -> BaseExecutor:
        """Materialise the configured backend for this run."""
        name = self.executor_name or DEFAULT_EXECUTOR
        options = dict(self.executor_options)
        if name != "in-process":
            options.setdefault("workers", min(self.workers, max(1, pending_count)))
        if name == "queue-worker":
            # Workers must agree with this runner on content addresses and
            # run options, and should dedupe through the same store.
            options.setdefault("salt", self.salt)
            if self.cache is not None:
                options.setdefault("cache_dir", str(self.cache.root))
                shared = getattr(self.cache, "shared", None)
                if shared is not None:
                    options.setdefault("store_dir", str(shared.root))
            options.setdefault(
                "run_options",
                {
                    "trace_dir": self.trace_dir,
                    "check_invariants": self.check_invariants,
                    "scenario_timeout": self.scenario_timeout,
                },
            )
        return make_executor(name, **options)

    def _dispatch(
        self,
        payloads: List[Dict[str, Any]],
        pending: List[int],
        finish: Callable[[int, Dict[str, Any]], None],
    ) -> str:
        """Fan pending scenarios out over the configured executor.

        ``run_scenario`` already converts ordinary exceptions into failed
        records inside the worker, so the only thing that reaches this
        level is the backend itself breaking (a pool worker OOM-killed, a
        queue fleet dying) — surfaced as :class:`ExecutorBroken` per
        affected submit.  Those scenarios are re-run in-process, where the
        same per-scenario isolation applies, instead of killing the
        campaign.
        """
        broken: List[int] = []

        async def drive() -> str:
            executor = self.executor or self._build_executor(len(pending))

            async def one(index: int) -> None:
                try:
                    record = await executor.submit(
                        run_scenario,
                        payloads[index],
                        self.trace_dir,
                        self.check_invariants,
                        self.scenario_timeout,
                    )
                except ExecutorBroken:
                    broken.append(index)
                else:
                    finish(index, record)

            try:
                await asyncio.gather(*(one(index) for index in pending))
            finally:
                await executor.shutdown()
            return executor.name

        label = asyncio.run(drive())
        for index in sorted(broken):
            finish(
                index,
                run_scenario(
                    payloads[index],
                    self.trace_dir,
                    self.check_invariants,
                    self.scenario_timeout,
                ),
            )
        return label


def result_fingerprint(record: Dict[str, Any]) -> str:
    """Canonical serialisation of the deterministic part of a record.

    Two runs of the same scenario spec — serial or parallel, cached or
    fresh, on any executor — must agree byte-for-byte on this string.
    """
    return canonical_json(record.get("result", {}))


def _default_workers() -> int:
    import os

    return os.cpu_count() or 1


__all__ = [
    "DEFAULT_EXECUTOR",
    "REPORT_METRICS",
    "CampaignReport",
    "CampaignRunner",
    "ScenarioTimeout",
    "result_fingerprint",
    "run_scenario",
]
