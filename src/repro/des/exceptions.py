"""Exception types used by the DES kernel."""

from __future__ import annotations

from typing import Any


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` early.

    Carries the value the run should return.
    """

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Raised inside a process that was interrupted by another process.

    The interrupting party passes an arbitrary ``cause`` that the
    interrupted process can inspect — e.g. the batch system interrupts a
    job's execution process with a :class:`~repro.job.ReconfigurationOrder`
    or a kill marker.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        """The value passed to :meth:`Process.interrupt`."""
        return self.args[0]
