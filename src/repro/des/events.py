"""Core event types for the DES kernel.

An :class:`Event` is the unit of synchronization: processes yield events and
are resumed when the event is *processed*.  Events move through three states:

``pending``
    created, not yet triggered; may be succeeded/failed at any time.
``triggered``
    has a value and sits in the environment's queue.
``processed``
    its callbacks ran; waiting processes have been resumed.

Priorities order simultaneous events deterministically: ``URGENT`` events
(kernel-internal, e.g. fair-share re-evaluations) run before ``NORMAL`` ones
scheduled for the same instant.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from repro.des.exceptions import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.des.environment import Environment


#: Sentinel for "event has no value yet".
PENDING = object()

#: Priority of kernel-internal events; processed first at equal times.
URGENT = 0

#: Default priority of user events.
NORMAL = 1


class Event:
    """A one-shot occurrence that processes can wait for.

    Parameters
    ----------
    env:
        The environment the event lives in.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables invoked (in insertion order) when the event is processed.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    def __repr__(self) -> str:
        state = (
            "pending"
            if self._value is PENDING
            else ("processed" if self.callbacks is None else "triggered")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

    # -- state ----------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value (success or failure)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._value is PENDING:
            raise SimulationError("Event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception it failed with)."""
        if self._value is PENDING:
            raise SimulationError("Event value not yet available")
        return self._value

    @property
    def defused(self) -> bool:
        """True if a failure was marked as handled.

        An unhandled failed event escalates to :meth:`Environment.run` —
        this mirrors SimPy and catches silent error loss in models.
        """
        return self._defused

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    def cancel(self) -> None:
        """Withdraw a scheduled event: its queue entry becomes a no-op.

        The kernel drops cancelled entries without advancing the clock,
        running callbacks, or counting a processed event — this is how a
        walltime watchdog defuses its timer once the job finished, so
        stale timeouts neither bloat the heap walk nor drag ``env.now``
        past the last real event.  Only events nobody subscribed to can
        be cancelled (a waiting process would otherwise never resume);
        cancelling an already-processed event is a no-op.
        """
        if self.callbacks is None:
            return  # already processed
        if self.callbacks:
            raise SimulationError(
                f"Cannot cancel {self!r}: {len(self.callbacks)} subscriber(s) "
                "are waiting on it"
            )
        self.callbacks = None

    # -- triggering -----------------------------------------------------

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another event (callback-compatible)."""
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Inlined Environment.schedule(self) — zero delay, NORMAL priority;
        # every activity completion and condition fire goes through here.
        env = self.env
        heappush(env._queue, (env._now, NORMAL, next(env._eid), self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    # -- composition ----------------------------------------------------

    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])


class PooledEvent(Event):
    """A kernel-internal one-shot event recycled through the environment.

    The fair-share model's resolve/wake events and condition build-checks
    are created pre-succeeded, processed once at the current (or a known
    future) instant, and never escape to user code — so the environment
    returns them to a free pool right after their callbacks ran instead of
    leaving one garbage ``Event`` per solve event.  Obtain instances via
    :meth:`Environment.pooled_event` only; callbacks must not retain or
    re-schedule them.  ``Timeout`` events are deliberately *not* pooled:
    they are handed to user code, which may hold references past
    processing (e.g. the walltime watchdog's ``timer.cancel()``) or embed
    them in conditions.
    """

    __slots__ = ()


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"Negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Initialize(Event):
    """Kernel event that starts a process at creation time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: Any) -> None:
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class ConditionValue:
    """Result of a condition: an ordered mapping of fired events to values."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(str(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()}>"

    def __iter__(self):
        return iter(self.events)

    def keys(self):
        return self.events

    def values(self):
        return [e._value for e in self.events]

    def items(self):
        return [(e, e._value) for e in self.events]

    def todict(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events}


class Condition(Event):
    """Waits for a boolean combination of other events.

    ``evaluate`` receives the list of events and the count of fired ones and
    returns True once the condition is satisfied.  Failures of any composed
    event immediately fail the condition.
    """

    __slots__ = ("_evaluate", "_events", "_count", "_build_scheduled", "_target")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        self._build_scheduled = False
        # Fired-count threshold for the built-in combinators, so the hot
        # _check path compares two ints instead of calling back out.  -1
        # falls through to the general evaluate callable.
        if evaluate is Condition.all_events:
            self._target = len(self._events)
        elif evaluate is Condition.any_events:
            self._target = 1 if self._events else 0
        else:
            self._target = -1

        # Validate environments and register fire checks in one pass (the
        # engine builds one condition per task fan-out; this loop is hot).
        check = self._check
        for event in self._events:
            if event.env is not env:
                raise ValueError("Cannot mix events from different environments")
            if event.callbacks is None:  # already processed
                check(event)
            else:
                event.callbacks.append(check)

        # An empty condition is immediately true.
        if not self._events and self._value is PENDING:
            self.succeed(ConditionValue())

    def _populate_value(self, value: ConditionValue) -> None:
        for event in self._events:
            if isinstance(event, Condition):
                event._populate_value(value)
            elif event.callbacks is None:
                value.events.append(event)

    def _build_value(self, event: Event) -> None:
        self._remove_check_callbacks()
        if event._ok:
            value = ConditionValue()
            self._populate_value(value)
            self.succeed(value)

    def _remove_check_callbacks(self) -> None:
        for event in self._events:
            if event.callbacks is not None and self._check in event.callbacks:
                event.callbacks.remove(self._check)
            if isinstance(event, Condition):
                event._remove_check_callbacks()

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            # Abort on first failure; propagate it.
            event.defuse()
            self.fail(event._value)
            self._remove_check_callbacks()
        elif not self._build_scheduled and (
            self._count >= self._target
            if self._target >= 0
            else self._evaluate(self._events, self._count)
        ):
            self._build_scheduled = True
            # Delay value construction until this event is processed, so the
            # ConditionValue contains every event fired at this instant.
            # Pooled: the check never escapes this closure.
            check = self.env.pooled_event()
            check.callbacks.append(lambda _e: self._build_value(event))
            # NORMAL priority: the fresh insertion id places this after every
            # event already queued for the current instant, so the condition
            # value includes all simultaneously fired members.
            self.env.schedule(check, priority=NORMAL)

    @staticmethod
    def all_events(events: list[Event], count: int) -> bool:
        """True when *all* events have fired."""
        return len(events) == count

    @staticmethod
    def any_events(events: list[Event], count: int) -> bool:
        """True when *any* event has fired (or there are none)."""
        return count > 0 or len(events) == 0


class AllOf(Condition):
    """Condition satisfied when every event in ``events`` has succeeded."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition satisfied when any event in ``events`` has succeeded."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)
