"""Generator-based processes.

A :class:`Process` drives a Python generator: each ``yield``-ed
:class:`~repro.des.events.Event` suspends the generator until the event is
processed, at which point the kernel resumes it with the event's value (or
throws the event's exception into it).  The process itself is an event that
fires when the generator returns, so processes can wait on one another.
"""

from __future__ import annotations

from types import GeneratorType
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.des.events import Event, Initialize, PENDING, URGENT
from repro.des.exceptions import Interrupt, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.des.environment import Environment


class Process(Event):
    """Wraps a generator and executes it as a simulation process."""

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not isinstance(generator, GeneratorType):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process currently waits for (None if resuming/dead).
        self._target: Optional[Event] = None
        self.name = name or generator.__name__
        Initialize(env, self)

    def __repr__(self) -> str:
        return f"<Process {self.name!r} at {id(self):#x}>"

    @classmethod
    def reenter(
        cls,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str,
    ) -> "Process":
        """Rebuild a suspended process from a deterministic resume generator.

        Snapshot restore cannot pickle live generators, so each process
        owner records *where* its generator was suspended and rebuilds an
        equivalent one that starts at that wait.  Unlike ``__init__`` this
        does not schedule an :class:`Initialize` event (the original
        initialization was already processed before the snapshot): the
        generator is advanced to its first ``yield`` right here and the
        process subscribes to that event, exactly reproducing the suspended
        wiring (``target.callbacks == [..., process._resume]``).

        The resume generator must therefore perform no event *scheduling*
        before its first yield beyond what the original performed after its
        last processed event — the first yielded event is normally one
        rebuilt from the snapshot rather than a fresh one.
        """
        if not isinstance(generator, GeneratorType):
            raise TypeError(f"{generator!r} is not a generator")
        proc = cls.__new__(cls)
        Event.__init__(proc, env)
        proc._generator = generator
        proc._target = None
        proc.name = name
        try:
            first = next(generator)
        except StopIteration:
            raise SimulationError(
                f"Resume generator for {name!r} terminated before its first "
                "wait; a suspended process must have one"
            ) from None
        if not isinstance(first, Event) or first.env is not env:
            raise SimulationError(
                f"Resume generator for {name!r} yielded invalid item {first!r}"
            )
        if first.callbacks is None:
            raise SimulationError(
                f"Resume generator for {name!r} yielded an already-processed "
                "event; the rebuilt wait must still be pending"
            )
        first.callbacks.append(proc._resume)
        proc._target = first
        return proc

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting for."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        The process receives the interrupt the next time it is scheduled,
        aborting its current wait.  Interrupting a dead process or a process
        from within itself is an error.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("A process is not allowed to interrupt itself")

        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True

        # Unsubscribe from the event we were waiting for: the interrupt
        # supersedes it.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

        interrupt_event.callbacks.append(self._resume)
        self.env.schedule(interrupt_event, priority=URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        env = self.env
        env._active_process = self

        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # The event failed: throw its exception into the process.
                    event._defused = True
                    exc = event._value
                    next_event = self._generator.throw(type(exc), exc, exc.__traceback__)
            except StopIteration as stop:
                # Process finished successfully.
                self._ok = True
                self._value = stop.value
                env.schedule(self)
                break
            except BaseException as error:
                if not isinstance(error, Exception):
                    # Asynchronous control flow — KeyboardInterrupt,
                    # SystemExit, a deadline injected by SIGALRM or
                    # PyThreadState_SetAsyncExc — must abort the whole
                    # run, never become a "process crashed" event: a
                    # watcher could defuse that event and the (one-shot)
                    # interrupt would be silently swallowed.
                    env._active_process = None
                    raise
                # Process crashed: fail the process event with a traceback.
                self._ok = False
                self._value = error
                env.schedule(self)
                break

            # The process yielded a new event to wait for.
            if not isinstance(next_event, Event):
                self._crash_on_bad_yield(next_event)
                break
            if next_event.env is not env:
                self._crash_on_bad_yield(next_event)
                break

            if next_event.callbacks is not None:
                # Event not yet processed: subscribe and suspend.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Already processed: continue immediately with its value.
            event = next_event
            if not event._ok and not event._defused:
                # A failed-and-unhandled event yielded after processing:
                # propagate into the generator on the next loop turn.
                pass

        env._active_process = None

    def _crash_on_bad_yield(self, item: Any) -> None:
        error = SimulationError(f"Process {self.name!r} yielded invalid item {item!r}")
        try:
            self._generator.throw(SimulationError, error)
        except BaseException as exc:
            if not isinstance(exc, Exception):
                self.env._active_process = None
                raise
            self._ok = False
            self._value = exc
            self.env.schedule(self)
            return
        # Generator swallowed the error; treat as crash anyway.
        self._ok = False
        self._value = error
        self.env.schedule(self)
