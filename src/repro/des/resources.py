"""Waitable shared resources: counted resources, containers, stores.

These are convenience synchronization primitives on top of the event core.
The batch system uses a :class:`Store` for its invocation mailbox, burst
buffers use a :class:`Container` for capacity accounting, and tests use
:class:`Resource` to validate kernel semantics.  (Link/PFS *bandwidth* is
not modelled with these — that is the job of :mod:`repro.sharing`.)
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, Optional

from repro.des.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.des.environment import Environment


class Request(Event):
    """Pending acquisition of one slot of a :class:`Resource`.

    Usable as a context manager so that ``with resource.request() as req``
    automatically releases on exit.
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request."""
        self.resource._cancel(self)


class Resource:
    """A resource with ``capacity`` slots and a FIFO wait queue."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    def request(self) -> Request:
        """Request one slot; the returned event fires when granted."""
        req = Request(self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            self.queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a slot and grant the next queued request, if any."""
        try:
            self.users.remove(request)
        except ValueError:
            # Releasing a queued or foreign request: drop it from the queue.
            self._cancel(request)
            return
        if self.queue:
            nxt = self._pop_next()
            self.users.append(nxt)
            nxt.succeed()

    def _pop_next(self) -> Request:
        """Dequeue the next request to grant (subclasses change the order)."""
        return self.queue.popleft()

    def _cancel(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass


class PriorityRequest(Request):
    """Request with a priority; lower values are served first."""

    __slots__ = ("priority", "_order")

    def __init__(self, resource: "PriorityResource", priority: int) -> None:
        self.priority = priority
        self._order = resource._ticket()
        super().__init__(resource)

    def sort_key(self) -> tuple[int, int]:
        return (self.priority, self._order)


class PriorityResource(Resource):
    """A :class:`Resource` whose queue is ordered by request priority.

    The queue is a list kept sorted by ``(priority, ticket)`` via
    ``bisect.insort`` — O(log n) compares + one O(n) shift per enqueue
    instead of re-sorting the whole queue (O(n log n)) on every request.
    Ties keep submission order through the monotonic ticket.
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._counter = 0
        # Sorted list, not a deque: insort needs random access.  The base
        # class only uses append/remove/_pop_next, which both provide.
        self.queue: list[PriorityRequest] = []  # type: ignore[assignment]

    def _ticket(self) -> int:
        self._counter += 1
        return self._counter

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        req = PriorityRequest(self, priority)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            insort(self.queue, req, key=PriorityRequest.sort_key)
        return req

    def _pop_next(self) -> PriorityRequest:
        return self.queue.pop(0)


class Container:
    """A continuous resource level with blocking put/get.

    Used for burst-buffer capacity: ``put`` adds, ``get`` removes, both
    block until the operation fits within ``[0, capacity]``.
    """

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        if not 0 <= init <= capacity:
            raise ValueError("init must lie within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = init
        self._puts: Deque[tuple[Event, float]] = deque()
        self._gets: Deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        """Current amount stored."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; fires once it fits below capacity."""
        if amount < 0:
            raise ValueError("amount must be >= 0")
        ev = Event(self.env)
        self._puts.append((ev, amount))
        self._dispatch()
        return ev

    def get(self, amount: float) -> Event:
        """Remove ``amount``; fires once the level suffices."""
        if amount < 0:
            raise ValueError("amount must be >= 0")
        ev = Event(self.env)
        self._gets.append((ev, amount))
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._puts:
                ev, amount = self._puts[0]
                if self._level + amount <= self.capacity:
                    self._puts.popleft()
                    self._level += amount
                    ev.succeed()
                    progressed = True
            if self._gets:
                ev, amount = self._gets[0]
                if self._level >= amount:
                    self._gets.popleft()
                    self._level -= amount
                    ev.succeed()
                    progressed = True


class StoreGet(Event):
    """Pending retrieval from a :class:`Store`."""

    __slots__ = ("filter",)

    def __init__(self, env: "Environment", filter: Optional[Callable[[Any], bool]]) -> None:
        super().__init__(env)
        self.filter = filter


class Store:
    """An unbounded FIFO of Python objects with blocking ``get``.

    The batch system's scheduler-invocation mailbox is a Store: simulation
    events push invocation records, the scheduling loop pops them.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> None:
        """Append ``item`` and wake a matching getter if one waits."""
        self.items.append(item)
        self._dispatch()

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Event that fires with the next (matching) item."""
        ev = StoreGet(self.env, filter)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        while self._getters and self.items:
            getter = self._getters[0]
            matched = None
            if getter.filter is None:
                matched = self.items.popleft()
            else:
                for idx, item in enumerate(self.items):
                    if getter.filter(item):
                        del self.items[idx]
                        matched = item
                        break
                if matched is None:
                    return  # Head getter cannot be satisfied yet.
            self._getters.popleft()
            getter.succeed(matched)
