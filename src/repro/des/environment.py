"""The simulation environment: clock, event queue, main loop."""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from math import inf
from typing import Any, Generator, Iterable, Optional, Union

from repro.des.events import (
    AllOf,
    AnyOf,
    Event,
    NORMAL,
    PooledEvent,
    Timeout,
    URGENT,
)
from repro.des.exceptions import SimulationError, StopSimulation
from repro.des.process import Process


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """Execution environment of a simulation.

    Maintains the simulated clock (:attr:`now`) and a priority queue of
    triggered events ordered by ``(time, priority, insertion id)``.  The
    insertion id makes runs fully deterministic: events scheduled at the
    same time with the same priority are processed in scheduling order.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now: float = initial_time
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None
        #: Free list for :class:`PooledEvent` instances (see
        #: :meth:`pooled_event`); capped so pathological bursts don't pin
        #: memory.
        self._event_pool: list[PooledEvent] = []
        #: Total number of events processed; used by the E5 benchmark.
        self.processed_events: int = 0
        #: Optional flight recorder (see :mod:`repro.tracing`); when set,
        #: process creation/termination is recorded on the kernel track.
        #: Kept as a plain attribute so the disabled path costs a single
        #: ``is None`` check.
        self.tracer: Optional[Any] = None

    # -- introspection ----------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    def __repr__(self) -> str:
        return f"<Environment t={self._now} queued={len(self._queue)}>"

    # -- factories ---------------------------------------------------------

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def pooled_event(self) -> PooledEvent:
        """A recycled kernel-internal event, pre-succeeded with ``None``.

        For the resolve/wake/condition-check pattern: append one callback,
        schedule, forget.  The main loop returns the instance to the pool
        right after processing, so callers must not keep references past
        their callback.
        """
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.callbacks = []
            event._value = None
            event._ok = True
            event._defused = False
            return event
        event = PooledEvent(self)
        event._ok = True
        event._value = None
        return event

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` that fires after ``delay``."""
        return Timeout(self, delay, value)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a new :class:`Process` from ``generator``."""
        proc = Process(self, generator, name=name)
        tracer = self.tracer
        if tracer is not None:
            tracer.instant("proc.start", "kernel", proc.name, self._now)
            proc.callbacks.append(
                lambda _event: tracer.instant("proc.end", "kernel", proc.name, self._now)
            )
        return proc

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all ``events`` succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` succeeded."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def schedule(
        self,
        event: Event,
        priority: int = NORMAL,
        delay: float = 0.0,
    ) -> None:
        """Queue ``event`` to be processed after ``delay``."""
        if delay:
            if delay < 0:
                raise ValueError(f"Negative delay {delay}")
            time = self._now + delay
        else:
            # Hot path: most events fire at the current instant; skip the
            # float add (``now + 0.0`` is an identity for the non-negative
            # times the clock takes anyway).
            time = self._now
        heappush(self._queue, (time, priority, next(self._eid), event))

    def schedule_at(
        self,
        event: Event,
        time: float,
        priority: int = NORMAL,
    ) -> None:
        """Queue ``event`` at absolute simulated ``time``.

        Unlike :meth:`schedule`, no ``now + delay`` rounding occurs: the
        event fires at exactly the float passed in, which is what heap-based
        wake-up bookkeeping (the fair-share model's completion horizons)
        needs to match queued times bit-for-bit.  Times in the past are
        clamped to the current instant.
        """
        if time != time:  # NaN would corrupt the heap invariant
            raise ValueError("Cannot schedule at time NaN")
        if time < self._now:
            time = self._now
        heappush(self._queue, (time, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else inf

    def step(self) -> None:
        """Process the next event.

        Raises :class:`EmptySchedule` if the queue is empty and propagates
        failures of events nobody handled (defused is False).
        """
        queue = self._queue
        while True:
            try:
                now, _, _, event = heappop(queue)
            except IndexError:
                raise EmptySchedule() from None
            callbacks, event.callbacks = event.callbacks, None
            if callbacks is not None:
                break
            # Cancelled events and duplicate schedules of an already-
            # processed event are dropped without advancing the clock:
            # a defused walltime timer must not drag ``now`` to its
            # original expiry or count as a processed event.
        self._now = now
        # Count before running callbacks: a raising callback (including the
        # StopSimulation control flow) must not desync the E5 event count.
        self.processed_events += 1
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # Nobody handled this failure: crash the run loudly.
            exc = event._value
            raise exc

        if type(event) is PooledEvent and len(self._event_pool) < 128:
            self._event_pool.append(event)

    # -- running -----------------------------------------------------------

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run until the queue empties, a time is reached, or an event fires.

        Parameters
        ----------
        until:
            ``None`` — run to exhaustion.  A number — run until the clock
            reaches it (the clock is advanced to exactly ``until``).  An
            :class:`Event` — run until it is processed and return its value.
        """
        stop: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop = until
                if stop.callbacks is None:  # already processed
                    return stop._value
                stop.callbacks.append(self._stop_callback)
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(
                        f"until ({at}) must not be earlier than now ({self._now})"
                    )
                stop = Event(self)
                stop._ok = True
                stop._value = None
                # URGENT so that the stop fires before user events at `at`.
                self.schedule(stop, priority=URGENT, delay=at - self._now)
                stop.callbacks.append(self._stop_callback)

        # Inlined main loop — identical semantics to step() in a loop, with
        # the per-event overhead shaved: pre-bound heappop/queue/pool
        # locals, no per-step method call, and a fast path for the dominant
        # "single callback" case.
        queue = self._queue
        pop = heappop
        pool = self._event_pool
        try:
            while True:
                while True:
                    if not queue:
                        raise EmptySchedule()
                    now, _, _, event = pop(queue)
                    callbacks = event.callbacks
                    if callbacks is not None:
                        event.callbacks = None
                        break
                    # Cancelled / already-processed entries: dropped without
                    # advancing the clock (see step()).
                self._now = now
                self.processed_events += 1
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    raise event._value
                if type(event) is PooledEvent and len(pool) < 128:
                    pool.append(event)
        except StopSimulation as stop_exc:
            return stop_exc.value
        except EmptySchedule:
            if stop is not None and stop.callbacks is not None:
                if isinstance(until, Event):
                    raise SimulationError(
                        f"No scheduled events left but until={until!r} was not triggered"
                    ) from None
            return None

    def run_hooked(
        self,
        until: Union[None, float, Event],
        next_target: Optional[int],
        hook: Any,
    ) -> Any:
        """Like :meth:`run`, invoking ``hook`` at quiet event-count targets.

        Once :attr:`processed_events` reaches ``next_target`` *and* the
        simulation is at a quiet boundary (queue empty, or the next entry
        strictly in the future — i.e. no more events fire at the current
        instant), ``hook()`` is called and must return the next target (or
        ``None`` to stop hooking).  Quiet boundaries are the only points
        where a snapshot is well-defined: every process is suspended on a
        future event and no kernel-internal work (resolves, condition
        builds) is in flight.

        Kept as a separate copy of the :meth:`run` hot loop so the
        default path pays nothing for the feature.
        """
        stop: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop = until
                if stop.callbacks is None:  # already processed
                    return stop._value
                stop.callbacks.append(self._stop_callback)
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(
                        f"until ({at}) must not be earlier than now ({self._now})"
                    )
                stop = Event(self)
                stop._ok = True
                stop._value = None
                self.schedule(stop, priority=URGENT, delay=at - self._now)
                stop.callbacks.append(self._stop_callback)

        queue = self._queue
        pop = heappop
        pool = self._event_pool
        try:
            while True:
                while True:
                    if not queue:
                        raise EmptySchedule()
                    now, _, _, event = pop(queue)
                    callbacks = event.callbacks
                    if callbacks is not None:
                        event.callbacks = None
                        break
                self._now = now
                self.processed_events += 1
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    raise event._value
                if type(event) is PooledEvent and len(pool) < 128:
                    pool.append(event)
                if next_target is not None and self.processed_events >= next_target:
                    if not queue or queue[0][0] > now:
                        next_target = hook()
        except StopSimulation as stop_exc:
            return stop_exc.value
        except EmptySchedule:
            if stop is not None and stop.callbacks is not None:
                if isinstance(until, Event):
                    raise SimulationError(
                        f"No scheduled events left but until={until!r} was not triggered"
                    ) from None
            return None

    # -- snapshot/restore ---------------------------------------------------

    def capture_state(self, registry: Any) -> dict:
        """Snapshot the clock, counters and the live event-queue skeleton.

        ``registry`` maps live queued events to stable snapshot ids (see
        :class:`repro.replay.snapshot.SidRegistry`); every owner module must
        have *claimed* its queue-resident events before this runs — an
        unclaimed live entry means some state holder would be silently lost,
        so it is a hard error.  Cancelled entries (``callbacks is None``) are
        dropped: the kernel would discard them without observable effect.

        Each entry records its original insertion id as a *rank*.  Only the
        relative order of ranks is observable (ties in ``(time, priority)``
        break on insertion id), so restore renumbers the queue canonically —
        which both keeps resumed runs byte-identical and gives what-if
        editing a clean way to splice entries between existing ranks.
        """
        entries = []
        for time, priority, eid, event in sorted(self._queue):
            if event.callbacks is None:
                continue  # cancelled; kernel would drop it silently
            if not event.callbacks:
                # Subscriber-less but not cancelled — e.g. the delay timeout
                # of a killed job whose interrupt unsubscribed the process.
                # Processing it only advances the clock and the event count,
                # so any bare succeeded event reproduces it exactly.
                entries.append([time, priority, eid, "__bare__"])
                continue
            sid = registry.sid_of(event)
            if sid is None:
                raise SimulationError(
                    f"Unclaimed live queue entry at t={time} prio={priority}: "
                    f"{event!r}. Every queued event must be claimed by its "
                    "owning module's capture_state()."
                )
            entries.append([time, priority, eid, sid])
        return {
            "time": self._now,
            "processed_events": self.processed_events,
            "queue": entries,
        }

    def restore_state(self, state: dict, registry: Any) -> None:
        """Rebuild the event queue from a snapshot (see :meth:`capture_state`).

        Ranks are normalized to tuples so a what-if edit can splice an entry
        between rank ``r`` and ``r + 1`` with ``(r, 1, k)`` — tuple order
        puts ``(r,)`` before ``(r, 1, k)`` before ``(r + 1,)``.  Fresh
        insertion ids ``0..n-1`` are assigned in rank order and the id
        counter continues from ``n``.
        """

        def rank_key(entry: list) -> tuple:
            time, priority, rank, _sid = entry
            if isinstance(rank, (list, tuple)):
                return (time, priority, tuple(rank))
            return (time, priority, (rank,))

        queue: list[tuple[float, int, int, Event]] = []
        for n, (time, priority, _rank, sid) in enumerate(
            sorted(state["queue"], key=rank_key)
        ):
            if sid == "__bare__":
                event = Event(self)
                event._ok = True
                event._value = None
            else:
                event = registry.event_of(sid)
            queue.append((time, priority, n, event))
        self._now = state["time"]
        self.processed_events = state["processed_events"]
        self._queue = queue  # sorted list is a valid heap
        self._eid = count(len(queue))
        self._event_pool = []

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        # A failed until-event propagates its exception.
        raise event._value
