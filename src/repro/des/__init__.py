"""Discrete-event simulation kernel.

A from-scratch, generator-based discrete-event simulation (DES) core in the
spirit of SimPy / SimGrid's simulation loop.  It is the substrate on which
the whole batch-system simulator runs: the fair-sharing activity engine
(:mod:`repro.sharing`), the job execution engine (:mod:`repro.engine`) and
the batch system (:mod:`repro.batch`) are all expressed as processes and
events on an :class:`Environment`.

Design points
-------------
* **Deterministic ordering.**  The event queue orders by
  ``(time, priority, insertion id)`` so identical runs replay identically —
  a hard requirement for reproducible experiments.
* **Generator processes.**  A process is a Python generator that yields
  events; the kernel resumes it when the yielded event fires.  Processes can
  be interrupted (used for job kills and malleable reconfiguration).
* **Composable conditions.**  ``AllOf`` / ``AnyOf`` let the execution engine
  wait on groups of activities (e.g. "all flows of an all-to-all finished").

Example
-------
>>> from repro.des import Environment
>>> env = Environment()
>>> def proc(env):
...     yield env.timeout(5)
...     return env.now
>>> p = env.process(proc(env))
>>> env.run()
>>> p.value
5
"""

from repro.des.events import (
    AllOf,
    AnyOf,
    Condition,
    Event,
    Timeout,
    PENDING,
    URGENT,
    NORMAL,
)
from repro.des.exceptions import Interrupt, SimulationError, StopSimulation
from repro.des.process import Process
from repro.des.environment import Environment, EmptySchedule
from repro.des.resources import Container, PriorityResource, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Container",
    "EmptySchedule",
    "Environment",
    "Event",
    "Interrupt",
    "NORMAL",
    "PENDING",
    "PriorityResource",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "StopSimulation",
    "Timeout",
    "URGENT",
]
