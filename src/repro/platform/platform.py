"""The Platform aggregate: nodes + topology + PFS."""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import List, Optional, Sequence, Set

from repro.platform.components import Node, NodeState, Pfs, PlatformError
from repro.platform.topology import PFS, Route, Topology

try:  # numpy backs the node-state masks; everything degrades to sets
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None


class Platform:
    """A complete machine description.

    Parameters
    ----------
    nodes:
        The compute nodes, densely indexed 0..n-1.
    topology:
        Provides routes between nodes and to the PFS.
    pfs:
        The parallel file system; optional for compute-only studies.
    name:
        Display name used in reports.
    power_corridor:
        Optional system-wide power cap in watts.  Purely declarative at
        this layer: corridor-aware schedulers read it through the
        scheduler context and keep aggregate draw below it; the streaming
        invariant checker audits that they did.
    """

    def __init__(
        self,
        nodes: Sequence[Node],
        topology: Topology,
        pfs: Optional[Pfs] = None,
        *,
        name: str = "cluster",
        power_corridor: Optional[float] = None,
    ) -> None:
        if not nodes:
            raise PlatformError("Platform needs at least one node")
        for expected, node in enumerate(nodes):
            if node.index != expected:
                raise PlatformError(
                    f"Node indices must be dense: expected {expected}, "
                    f"got {node.index}"
                )
        if power_corridor is not None and power_corridor <= 0:
            raise PlatformError(
                f"power_corridor must be > 0, got {power_corridor}"
            )
        self.name = name
        self.nodes: List[Node] = list(nodes)
        self.topology = topology
        self.pfs = pfs
        self.power_corridor: Optional[float] = (
            float(power_corridor) if power_corridor is not None else None
        )
        #: Power-transition listener (the monitor's meter when power
        #: accounting is on).  Receives every node state change from
        #: :meth:`_node_changed`, which is the single funnel all
        #: allocate/deallocate/fail/repair transitions pass through.
        self._power_listener = None
        topology.attach_nodes(self.nodes)

        # Incremental allocation indices.  Schedulers poll free_nodes() /
        # num_free_nodes() on every invocation; an O(n) node scan per call
        # dominated E5 profiles on large machines.  Nodes notify the
        # platform on every state transition (allocate/deallocate/fail/
        # repair), which keeps a sorted free-index list and an allocated
        # set current at O(log n + shift) per *change* instead of O(n) per
        # *query*.  A node can belong to one platform at a time.
        self._free_ids: List[int] = []
        self._allocated_ids: Set[int] = set()
        self._failed_ids: Set[int] = set()
        #: Materialised free_nodes() result, rebuilt only after a change.
        self._free_cache: Optional[List[Node]] = None
        #: Node-state struct-of-arrays: boolean masks indexed by node id.
        #: Maintained alongside the index structures so bulk queries
        #: (counts, histograms, vectorized scheduling policies) read one
        #: array instead of walking Node objects.  ``None`` without numpy.
        self._free_mask = _np.zeros(len(self.nodes), dtype=bool) if _np is not None else None
        self._failed_mask = _np.zeros(len(self.nodes), dtype=bool) if _np is not None else None
        for node in self.nodes:
            node._pool = self
            if node.free:
                self._free_ids.append(node.index)
                if self._free_mask is not None:
                    self._free_mask[node.index] = True
            if node.assigned_job is not None:
                self._allocated_ids.add(node.index)
            if node.failed:
                self._failed_ids.add(node.index)
                if self._failed_mask is not None:
                    self._failed_mask[node.index] = True

    # -- sizing -----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def total_flops(self) -> float:
        return sum(node.flops for node in self.nodes)

    # -- allocation views ---------------------------------------------------

    def _node_changed(self, node: Node) -> None:
        """Node state-transition hook keeping the incremental indices exact."""
        index = node.index
        free_ids = self._free_ids
        self._free_cache = None
        is_free = node.state is NodeState.FREE and not node.failed
        if is_free:
            pos = bisect_left(free_ids, index)
            if pos == len(free_ids) or free_ids[pos] != index:
                insort(free_ids, index)
        else:
            pos = bisect_left(free_ids, index)
            if pos < len(free_ids) and free_ids[pos] == index:
                del free_ids[pos]
        if node.assigned_job is not None:
            self._allocated_ids.add(index)
        else:
            self._allocated_ids.discard(index)
        if node.failed:
            self._failed_ids.add(index)
        else:
            self._failed_ids.discard(index)
        if self._free_mask is not None:
            self._free_mask[index] = is_free
            self._failed_mask[index] = node.failed
        if self._power_listener is not None:
            self._power_listener.node_changed(node)

    def free_nodes(self) -> List[Node]:
        """Nodes currently not held by any job, in index order.

        Returns a cached list that is replaced — never mutated — on node
        state changes.  Callers must treat it as read-only (every in-tree
        consumer only slices/samples it); holding it across state changes
        yields the same stale-snapshot semantics the previous fresh-list
        implementation had.
        """
        cache = self._free_cache
        if cache is None:
            nodes = self.nodes
            cache = self._free_cache = [nodes[i] for i in self._free_ids]
        return cache

    def num_free_nodes(self) -> int:
        return len(self._free_ids)

    def num_allocated_nodes(self) -> int:
        """Nodes currently held by jobs (excludes failed-but-idle nodes)."""
        return len(self._allocated_ids)

    def num_failed_nodes(self) -> int:
        return len(self._failed_ids)

    def free_mask(self):
        """Boolean numpy mask of free nodes (``None`` without numpy).

        Indexed by node id; a read-only struct-of-arrays view for bulk
        queries and vectorized policies.  Callers must not write to it.
        """
        return self._free_mask

    def failed_mask(self):
        """Boolean numpy mask of failed nodes (``None`` without numpy)."""
        return self._failed_mask

    def utilization(self) -> float:
        """Fraction of nodes currently allocated."""
        return 1.0 - self.num_free_nodes() / self.num_nodes

    # -- power --------------------------------------------------------------

    @property
    def power_enabled(self) -> bool:
        """True when any node declares a non-zero draw."""
        return any(node.peak_watts > 0 for node in self.nodes)

    def power_profile(self) -> Optional[dict]:
        """Per-node draw and corridor as a JSON-safe dict; None when off.

        Uniform fleets (everything the loader builds) collapse to scalar
        ``idle``/``peak``; hand-built heterogeneous platforms get per-node
        lists.  Embedded in the ``sim.start`` trace record so a post-hoc
        :func:`~repro.tracing.check_trace` can re-arm the power-corridor
        invariant from the trace alone.
        """
        if not self.power_enabled:
            return None
        idles = [node.idle_watts for node in self.nodes]
        peaks = [node.peak_watts for node in self.nodes]
        uniform = len(set(idles)) == 1 and len(set(peaks)) == 1
        return {
            "idle": idles[0] if uniform else idles,
            "peak": peaks[0] if uniform else peaks,
            "corridor": self.power_corridor,
        }

    def current_power(self) -> float:
        """Aggregate instantaneous draw in watts (exact recomputation).

        O(n) in the node count, but only consulted by corridor-aware
        scheduling decisions and tests — the hot energy integral is
        maintained incrementally by the monitor's meter instead.
        """
        return sum(node.power_watts for node in self.nodes)

    # -- routing ------------------------------------------------------------

    def route(self, src: int, dst: int) -> Route:
        """Node-to-node route."""
        return self.topology.route(src, dst)

    def route_to_pfs(self, src: int) -> Route:
        """Route a write takes from ``src`` to the PFS (excl. PFS service)."""
        self._require_pfs()
        return self.topology.route(src, PFS)

    def route_from_pfs(self, dst: int) -> Route:
        """Route a read takes from the PFS to ``dst`` (excl. PFS service)."""
        self._require_pfs()
        return self.topology.route(PFS, dst)

    def _require_pfs(self) -> None:
        if self.pfs is None:
            raise PlatformError(f"Platform {self.name!r} has no PFS configured")

    # -- snapshot/restore ---------------------------------------------------

    def shared_resources(self) -> List:
        """Every shared resource of the machine, in a deterministic walk.

        Snapshot capture references resources positionally through this
        list (node-owned resources in index order, then the PFS service
        resources, then the topology's own list), so capture and restore
        agree on indices for any platform built from the same description.
        Resources owned by both a node and the topology (a star topology's
        NICs) are deduplicated by identity, keeping indices unique.
        """
        resources: List = []
        seen: Set[int] = set()

        def add(res) -> None:
            if res is not None and id(res) not in seen:
                seen.add(id(res))
                resources.append(res)

        for node in self.nodes:
            add(node.cpu)
            add(node.gpu)
            add(node.up)
            add(node.down)
            if node.bb is not None:
                add(node.bb.read)
                add(node.bb.write)
        if self.pfs is not None:
            add(self.pfs.read)
            add(self.pfs.write)
        for res in self.topology.shared_resources():
            add(res)
        return resources

    def capture_state(self) -> dict:
        """Snapshot the mutable machine state (node/occupancy flags only)."""
        nodes = []
        for node in self.nodes:
            nodes.append(
                {
                    "state": node.state.value,
                    "assigned_jid": (
                        node.assigned_job.jid
                        if node.assigned_job is not None
                        else None
                    ),
                    "failed": node.failed,
                    "bb_used": node.bb.used if node.bb is not None else None,
                }
            )
        return {
            "nodes": nodes,
            "pfs_used": self.pfs.used if self.pfs is not None else None,
        }

    def restore_state(self, state: dict, jobs_by_jid: dict) -> None:
        """Apply a captured machine state to this (freshly built) platform."""
        for node, rec in zip(self.nodes, state["nodes"]):
            node.state = NodeState(rec["state"])
            jid = rec["assigned_jid"]
            node.assigned_job = jobs_by_jid[jid] if jid is not None else None
            node.failed = rec["failed"]
            if node.bb is not None and rec["bb_used"] is not None:
                node.bb.used = rec["bb_used"]
            self._node_changed(node)
        if self.pfs is not None and state["pfs_used"] is not None:
            self.pfs.used = state["pfs_used"]

    def __repr__(self) -> str:
        return (
            f"<Platform {self.name!r} nodes={self.num_nodes} "
            f"pfs={'yes' if self.pfs else 'no'}>"
        )
