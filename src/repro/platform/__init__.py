"""Platform model: compute nodes, network, PFS, burst buffers.

The platform is the static description of the simulated machine — the
counterpart of ElastiSim's SimGrid platform files.  It provides:

* :class:`Node` — a compute node exposing a flops-capacity CPU resource,
  NIC up/down link resources, and an optional node-local burst buffer.
* :class:`Pfs` — the parallel file system with shared read/write bandwidth
  (the contention point that experiment E4 studies).
* :class:`BurstBuffer` — node-local storage with its own bandwidths and a
  capacity account.
* Topologies — :class:`StarTopology` (flat switched cluster; ElastiSim's
  default abstraction) and :class:`GraphTopology` with fat-tree / torus /
  dragonfly builders on networkx for route-sensitive studies.
* :func:`load_platform` / :func:`platform_from_dict` — JSON description →
  :class:`Platform`, with validation errors that name the offending key.

All bandwidths are bytes/s, compute capacities flops/s, latencies seconds.
"""

from repro.platform.components import BurstBuffer, Node, Pfs, PlatformError
from repro.platform.topology import (
    GraphTopology,
    Link,
    Route,
    StarTopology,
    Topology,
    build_dragonfly,
    build_fat_tree,
    build_torus,
)
from repro.platform.platform import Platform
from repro.platform.loader import load_platform, platform_from_dict

__all__ = [
    "BurstBuffer",
    "GraphTopology",
    "Link",
    "Node",
    "Pfs",
    "Platform",
    "PlatformError",
    "Route",
    "StarTopology",
    "Topology",
    "build_dragonfly",
    "build_fat_tree",
    "build_torus",
    "load_platform",
    "platform_from_dict",
]
