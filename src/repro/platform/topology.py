"""Network topologies and routing.

A topology answers one question: *which shared resources does a transfer
between two endpoints traverse, and with what latency?*  The answer is a
:class:`Route` — a list of bandwidth resources plus an accumulated latency —
consumed by the execution engine to create flow activities.

Endpoints are node indices (ints) or the special string ``"pfs"``.

Two families are provided:

* :class:`StarTopology` — every node hangs off one big crossbar switch with
  a private up and down link; the PFS hangs off the same switch.  This is
  the abstraction ElastiSim's flat cluster platforms use and is O(1) per
  route.
* :class:`GraphTopology` — routes over an arbitrary networkx multigraph
  whose edges carry :class:`Link` objects; builders for fat-tree, torus and
  dragonfly shapes are included.  Shortest paths (by hop count) are cached.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Dict, Hashable, List, Tuple, Union

import networkx as nx

from repro.platform.components import PlatformError
from repro.sharing import SharedResource

Endpoint = Union[int, str]

#: Route endpoint naming the parallel file system.
PFS = "pfs"


class Link:
    """A network link: one bandwidth resource plus a latency."""

    __slots__ = ("name", "resource", "latency")

    def __init__(self, name: str, bandwidth: float, latency: float = 0.0) -> None:
        if bandwidth <= 0:
            raise PlatformError(f"Link {name!r}: bandwidth must be > 0")
        if latency < 0:
            raise PlatformError(f"Link {name!r}: latency must be >= 0")
        self.name = name
        self.resource = SharedResource(name, bandwidth)
        self.latency = latency

    @property
    def bandwidth(self) -> float:
        return self.resource.capacity

    def __repr__(self) -> str:
        return f"<Link {self.name} bw={self.bandwidth:g} lat={self.latency:g}>"


@dataclass(frozen=True)
class Route:
    """The resources a transfer traverses and its end-to-end latency."""

    resources: Tuple[SharedResource, ...]
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise PlatformError("Route latency must be >= 0")


class Topology:
    """Interface: map endpoint pairs to routes."""

    def route(self, src: Endpoint, dst: Endpoint) -> Route:
        """Route from ``src`` to ``dst``; loopback returns an empty route."""
        raise NotImplementedError

    def attach_nodes(self, nodes) -> None:
        """Give nodes their ``up``/``down`` NIC resources (topology-owned)."""
        raise NotImplementedError

    def shared_resources(self) -> List[SharedResource]:
        """Every topology-owned shared resource, in a deterministic order.

        Snapshot capture refers to resources by their position in the
        platform's resource walk (node-owned resources first, then this
        list) rather than by name: names are user-controlled in graph
        topologies and may collide, positions cannot.  The order must be a
        pure function of the topology's construction inputs.
        """
        raise NotImplementedError


class StarTopology(Topology):
    """All nodes on one non-blocking switch; PFS on dedicated uplinks.

    Parameters
    ----------
    num_nodes:
        Number of compute nodes.
    bandwidth:
        Per-node link bandwidth in bytes/s (full duplex: independent up and
        down resources).
    latency:
        One-way per-link latency; a node-to-node route crosses two links.
    pfs_bandwidth:
        Bandwidth of the PFS's switch uplink (defaults to ``bandwidth``).
    """

    def __init__(
        self,
        num_nodes: int,
        bandwidth: float,
        latency: float = 0.0,
        pfs_bandwidth: float | None = None,
    ) -> None:
        if num_nodes < 1:
            raise PlatformError("StarTopology needs at least one node")
        self.num_nodes = num_nodes
        self.latency = latency
        self._up = [
            SharedResource(f"node{i:04d}.up", bandwidth) for i in range(num_nodes)
        ]
        self._down = [
            SharedResource(f"node{i:04d}.down", bandwidth) for i in range(num_nodes)
        ]
        pfs_bw = pfs_bandwidth if pfs_bandwidth is not None else bandwidth
        self._pfs_in = SharedResource("pfs.link.in", pfs_bw)
        self._pfs_out = SharedResource("pfs.link.out", pfs_bw)

    def attach_nodes(self, nodes) -> None:
        if len(nodes) != self.num_nodes:
            raise PlatformError(
                f"Topology sized for {self.num_nodes} nodes, got {len(nodes)}"
            )
        for node, up, down in zip(nodes, self._up, self._down):
            node.up = up
            node.down = down

    def shared_resources(self) -> List[SharedResource]:
        resources: List[SharedResource] = []
        for up, down in zip(self._up, self._down):
            resources.append(up)
            resources.append(down)
        resources.append(self._pfs_in)
        resources.append(self._pfs_out)
        return resources

    def _check_index(self, idx: int) -> None:
        if not 0 <= idx < self.num_nodes:
            raise PlatformError(f"Node index {idx} out of range 0..{self.num_nodes-1}")

    def route(self, src: Endpoint, dst: Endpoint) -> Route:
        if src == dst:
            return Route((), 0.0)
        if src == PFS:
            # PFS → node: PFS egress + node ingress.
            self._check_index(dst)  # type: ignore[arg-type]
            return Route((self._pfs_out, self._down[dst]), 2 * self.latency)
        if dst == PFS:
            self._check_index(src)  # type: ignore[arg-type]
            return Route((self._up[src], self._pfs_in), 2 * self.latency)
        self._check_index(src)  # type: ignore[arg-type]
        self._check_index(dst)  # type: ignore[arg-type]
        return Route((self._up[src], self._down[dst]), 2 * self.latency)


class GraphTopology(Topology):
    """Routes over an explicit link graph.

    The graph's vertices are compute vertices ``("node", i)``, the literal
    string ``"pfs"``, and arbitrary switch vertices.  Each edge must carry a
    ``link`` attribute holding a :class:`Link`.  Routing is hop-count
    shortest path with deterministic tie-breaking; results are cached.
    """

    def __init__(self, graph: nx.Graph, num_nodes: int) -> None:
        for u, v, data in graph.edges(data=True):
            if "link" not in data or not isinstance(data["link"], Link):
                raise PlatformError(f"Edge {u!r}-{v!r} lacks a Link attribute")
        for i in range(num_nodes):
            if ("node", i) not in graph:
                raise PlatformError(f"Graph lacks vertex for node {i}")
        self.graph = graph
        self.num_nodes = num_nodes
        self._cache: Dict[Tuple[Hashable, Hashable], Route] = {}
        # Per-node NIC resources modelled by the node's incident edge(s);
        # for attach_nodes we synthesize infinite NICs (links constrain).
        self._nic: List[SharedResource] = []

    def attach_nodes(self, nodes) -> None:
        if len(nodes) != self.num_nodes:
            raise PlatformError(
                f"Topology sized for {self.num_nodes} nodes, got {len(nodes)}"
            )
        # In a graph topology the first/last edges already model the NIC.
        for node in nodes:
            node.up = None
            node.down = None

    def shared_resources(self) -> List[SharedResource]:
        # networkx preserves edge insertion order, and the builders add
        # edges in a deterministic order derived from their parameters.
        resources = [
            data["link"].resource for _, _, data in self.graph.edges(data=True)
        ]
        resources.extend(self._nic)
        return resources

    def _vertex(self, endpoint: Endpoint) -> Hashable:
        if endpoint == PFS:
            if PFS not in self.graph:
                raise PlatformError("Graph topology has no 'pfs' vertex")
            return PFS
        if not 0 <= endpoint < self.num_nodes:  # type: ignore[operator]
            raise PlatformError(
                f"Node index {endpoint} out of range 0..{self.num_nodes-1}"
            )
        return ("node", endpoint)

    def route(self, src: Endpoint, dst: Endpoint) -> Route:
        if src == dst:
            return Route((), 0.0)
        key = (src, dst)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        u, v = self._vertex(src), self._vertex(dst)
        try:
            path = nx.shortest_path(self.graph, u, v)
        except nx.NetworkXNoPath:
            raise PlatformError(f"No route between {src!r} and {dst!r}") from None
        resources: List[SharedResource] = []
        latency = 0.0
        for a, b in zip(path, path[1:]):
            link: Link = self.graph.edges[a, b]["link"]
            resources.append(link.resource)
            latency += link.latency
        result = Route(tuple(resources), latency)
        self._cache[key] = result
        return result


# ---------------------------------------------------------------------------
# Graph builders
# ---------------------------------------------------------------------------

def build_fat_tree(
    num_nodes: int,
    *,
    arity: int = 8,
    leaf_bandwidth: float,
    spine_bandwidth: float | None = None,
    latency: float = 1e-6,
    pfs_bandwidth: float | None = None,
) -> GraphTopology:
    """Two-level fat tree: leaf switches of ``arity`` nodes, one spine.

    ``spine_bandwidth`` defaults to ``arity * leaf_bandwidth`` (full
    bisection); pass less to model tapered trees.
    """
    if num_nodes < 1:
        raise PlatformError("fat tree needs at least one node")
    if arity < 1:
        raise PlatformError("arity must be >= 1")
    spine_bw = spine_bandwidth if spine_bandwidth is not None else arity * leaf_bandwidth
    graph = nx.Graph()
    num_leaves = (num_nodes + arity - 1) // arity
    for leaf in range(num_leaves):
        graph.add_edge(
            ("leaf", leaf),
            "spine",
            link=Link(f"leaf{leaf}-spine", spine_bw, latency),
        )
    for i in range(num_nodes):
        leaf = i // arity
        graph.add_edge(
            ("node", i),
            ("leaf", leaf),
            link=Link(f"node{i:04d}-leaf{leaf}", leaf_bandwidth, latency),
        )
    pfs_bw = pfs_bandwidth if pfs_bandwidth is not None else spine_bw
    graph.add_edge(PFS, "spine", link=Link("pfs-spine", pfs_bw, latency))
    return GraphTopology(graph, num_nodes)


def build_torus(
    dims: Tuple[int, ...],
    *,
    bandwidth: float,
    latency: float = 1e-6,
    pfs_bandwidth: float | None = None,
) -> GraphTopology:
    """N-dimensional torus; node i maps to mixed-radix coordinates of dims.

    The PFS attaches to node 0's vertex through a dedicated link.
    """
    if not dims or any(d < 1 for d in dims):
        raise PlatformError(f"Invalid torus dims {dims!r}")
    num_nodes = 1
    for d in dims:
        num_nodes *= d

    def coords(i: int) -> Tuple[int, ...]:
        out = []
        for d in reversed(dims):
            out.append(i % d)
            i //= d
        return tuple(reversed(out))

    def index(c: Tuple[int, ...]) -> int:
        i = 0
        for d, x in zip(dims, c):
            i = i * d + x
        return i

    graph = nx.Graph()
    for i in range(num_nodes):
        graph.add_node(("node", i))
    for i in range(num_nodes):
        c = coords(i)
        for axis, d in enumerate(dims):
            if d == 1:
                continue
            neighbour = list(c)
            neighbour[axis] = (c[axis] + 1) % d
            j = index(tuple(neighbour))
            if graph.has_edge(("node", i), ("node", j)):
                continue
            graph.add_edge(
                ("node", i),
                ("node", j),
                link=Link(f"torus{i}-{j}", bandwidth, latency),
            )
    pfs_bw = pfs_bandwidth if pfs_bandwidth is not None else bandwidth
    graph.add_edge(PFS, ("node", 0), link=Link("pfs-n0", pfs_bw, latency))
    return GraphTopology(graph, num_nodes)


def build_dragonfly(
    groups: int,
    routers_per_group: int,
    nodes_per_router: int,
    *,
    node_bandwidth: float,
    local_bandwidth: float | None = None,
    global_bandwidth: float | None = None,
    latency: float = 1e-6,
    pfs_bandwidth: float | None = None,
) -> GraphTopology:
    """Simplified dragonfly: all-to-all routers within a group, one global
    link between every group pair (attached round-robin to routers)."""
    if groups < 1 or routers_per_group < 1 or nodes_per_router < 1:
        raise PlatformError("dragonfly parameters must be >= 1")
    local_bw = local_bandwidth if local_bandwidth is not None else node_bandwidth * 2
    global_bw = global_bandwidth if global_bandwidth is not None else node_bandwidth * 4
    graph = nx.Graph()
    num_nodes = groups * routers_per_group * nodes_per_router
    # Node ↔ router links.
    for i in range(num_nodes):
        router = i // nodes_per_router
        graph.add_edge(
            ("node", i),
            ("router", router),
            link=Link(f"node{i:04d}-r{router}", node_bandwidth, latency),
        )
    # Intra-group all-to-all.
    for g in range(groups):
        routers = [g * routers_per_group + r for r in range(routers_per_group)]
        for a_idx, a in enumerate(routers):
            for b in routers[a_idx + 1 :]:
                graph.add_edge(
                    ("router", a),
                    ("router", b),
                    link=Link(f"local-r{a}-r{b}", local_bw, latency),
                )
    # Inter-group links, round-robin over routers.
    counter = 0
    for ga in range(groups):
        for gb in range(ga + 1, groups):
            ra = ga * routers_per_group + counter % routers_per_group
            rb = gb * routers_per_group + counter % routers_per_group
            graph.add_edge(
                ("router", ra),
                ("router", rb),
                link=Link(f"global-g{ga}-g{gb}", global_bw, 10 * latency),
            )
            counter += 1
    pfs_bw = pfs_bandwidth if pfs_bandwidth is not None else global_bw
    graph.add_edge(PFS, ("router", 0), link=Link("pfs-r0", pfs_bw, latency))
    return GraphTopology(graph, num_nodes)
