"""Compute nodes, parallel file system, and burst buffers."""

from __future__ import annotations

from enum import Enum
from math import inf
from typing import Optional

from repro.sharing import SharedResource


class PlatformError(Exception):
    """Raised for invalid platform descriptions or illegal state changes."""


class NodeState(Enum):
    """Allocation state of a compute node, as the batch system sees it."""

    FREE = "free"
    ALLOCATED = "allocated"


class BurstBuffer:
    """Node-local storage with independent read/write bandwidth.

    Capacity is tracked as a simple occupancy counter — the engine charges
    writes and credits releases; exceeding capacity raises, which surfaces
    modelling errors (the paper's burst buffers are sized for checkpoints).
    """

    def __init__(
        self,
        name: str,
        read_bw: float,
        write_bw: float,
        capacity: float = inf,
    ) -> None:
        if read_bw <= 0 or write_bw <= 0:
            raise PlatformError(f"BurstBuffer {name!r}: bandwidths must be > 0")
        if capacity <= 0:
            raise PlatformError(f"BurstBuffer {name!r}: capacity must be > 0")
        self.name = name
        self.read = SharedResource(f"{name}.read", read_bw)
        self.write = SharedResource(f"{name}.write", write_bw)
        self.capacity = float(capacity)
        self.used = 0.0

    def charge(self, nbytes: float) -> None:
        """Account ``nbytes`` of occupancy (called when a BB write finishes)."""
        if nbytes < 0:
            raise PlatformError("Cannot charge negative bytes")
        if self.used + nbytes > self.capacity * (1 + 1e-9):
            raise PlatformError(
                f"BurstBuffer {self.name!r} overflow: "
                f"{self.used + nbytes:g} > capacity {self.capacity:g}"
            )
        self.used += nbytes

    def release(self, nbytes: float) -> None:
        """Free ``nbytes`` of occupancy (e.g. checkpoint consumed/deleted)."""
        if nbytes < 0:
            raise PlatformError("Cannot release negative bytes")
        self.used = max(0.0, self.used - nbytes)

    @property
    def available(self) -> float:
        """Remaining capacity in bytes."""
        return max(0.0, self.capacity - self.used)

    def __repr__(self) -> str:
        return f"<BurstBuffer {self.name} used={self.used:g}/{self.capacity:g}>"


class Node:
    """A compute node.

    The CPU is one shared flops-capacity resource: parallel tasks of the
    *same* job and transient overlap during reconfiguration share it under
    max-min fairness, exactly like SimGrid hosts.

    Attributes
    ----------
    index:
        Dense integer id, also the node's rank order inside allocations.
    cpu:
        Flops-rate resource.
    up, down:
        NIC ingress/egress bandwidth resources (set by the topology).
    bb:
        Optional node-local :class:`BurstBuffer`.
    """

    def __init__(
        self,
        index: int,
        flops: float,
        *,
        name: Optional[str] = None,
        cores: int = 1,
        gpus: int = 0,
        gpu_flops: float = 0.0,
        bb: Optional[BurstBuffer] = None,
        idle_watts: float = 0.0,
        peak_watts: float = 0.0,
    ) -> None:
        if flops <= 0:
            raise PlatformError(f"Node {index}: flops must be > 0, got {flops}")
        if cores < 1:
            raise PlatformError(f"Node {index}: cores must be >= 1, got {cores}")
        if gpus < 0:
            raise PlatformError(f"Node {index}: gpus must be >= 0, got {gpus}")
        if gpus > 0 and gpu_flops <= 0:
            raise PlatformError(
                f"Node {index}: gpu_flops must be > 0 when gpus > 0"
            )
        if idle_watts < 0:
            raise PlatformError(
                f"Node {index}: idle_watts must be >= 0, got {idle_watts}"
            )
        if peak_watts < idle_watts:
            raise PlatformError(
                f"Node {index}: peak_watts must be >= idle_watts, "
                f"got {peak_watts} < {idle_watts}"
            )
        self.index = index
        self.name = name or f"node{index:04d}"
        self.flops = float(flops)
        self.cores = cores
        self.cpu = SharedResource(f"{self.name}.cpu", flops)
        self.gpus = gpus
        self.gpu_flops = float(gpu_flops)
        #: Aggregate GPU compute of the node (None when it has no GPUs);
        #: tasks on the same node's GPUs share it max-min fair.
        self.gpu: Optional[SharedResource] = (
            SharedResource(f"{self.name}.gpu", gpus * gpu_flops) if gpus else None
        )
        self.up: Optional[SharedResource] = None
        self.down: Optional[SharedResource] = None
        self.bb = bb
        #: Electrical draw while idle-but-up and while running a job, in
        #: watts.  Both default to 0 (power accounting off): a powerless
        #: node integrates zero energy and never constrains a corridor.
        self.idle_watts = float(idle_watts)
        self.peak_watts = float(peak_watts)
        self.state = NodeState.FREE
        #: Job currently holding this node (set by the batch system).
        self.assigned_job = None
        #: True while the node is down (failure injection).
        self.failed = False
        #: Owning :class:`~repro.platform.platform.Platform`, set when the
        #: node is attached to one; state changes notify its incremental
        #: free/allocated indices.  None for standalone nodes (tests).
        self._pool = None

    @property
    def free(self) -> bool:
        """True while no job holds the node and it is operational."""
        return self.state is NodeState.FREE and not self.failed

    @property
    def power_watts(self) -> float:
        """Instantaneous draw: 0 down, peak while allocated, idle otherwise.

        A failed-but-still-allocated node reads 0: the failure took it off
        the power rail even though the batch system has not yet reclaimed
        the allocation.
        """
        if self.failed:
            return 0.0
        if self.state is NodeState.ALLOCATED:
            return self.peak_watts
        return self.idle_watts

    def _notify_pool(self) -> None:
        pool = self._pool
        if pool is not None:
            pool._node_changed(self)

    def fail(self) -> None:
        """Mark the node as down; it stops being schedulable immediately.

        An allocated node stays formally allocated until its job is killed
        and releases it; the ``failed`` flag just keeps it out of the free
        pool afterwards.
        """
        self.failed = True
        self._notify_pool()

    def repair(self) -> None:
        """Bring the node back into service."""
        self.failed = False
        self._notify_pool()

    def allocate(self, job) -> None:
        """Mark the node as held by ``job``; double allocation is an error."""
        if self.state is not NodeState.FREE:
            raise PlatformError(
                f"Node {self.name} already allocated to "
                f"{getattr(self.assigned_job, 'name', self.assigned_job)!r}"
            )
        self.state = NodeState.ALLOCATED
        self.assigned_job = job
        self._notify_pool()

    def deallocate(self) -> None:
        """Return the node to the free pool."""
        if self.state is NodeState.FREE:
            raise PlatformError(f"Node {self.name} is not allocated")
        self.state = NodeState.FREE
        self.assigned_job = None
        self._notify_pool()

    def __repr__(self) -> str:
        return f"<Node {self.name} {self.state.value} flops={self.flops:g}>"


class Pfs:
    """The parallel file system: shared read and write bandwidth.

    All nodes reaching the PFS share these two resources — the single most
    important contention point for I/O-heavy batch workloads (experiment
    E4).  ``capacity`` optionally tracks occupancy like a burst buffer.
    """

    def __init__(
        self,
        read_bw: float,
        write_bw: float,
        *,
        name: str = "pfs",
        capacity: float = inf,
    ) -> None:
        if read_bw <= 0 or write_bw <= 0:
            raise PlatformError(f"Pfs {name!r}: bandwidths must be > 0")
        self.name = name
        self.read = SharedResource(f"{name}.read", read_bw)
        self.write = SharedResource(f"{name}.write", write_bw)
        self.capacity = float(capacity)
        self.used = 0.0

    def __repr__(self) -> str:
        return (
            f"<Pfs {self.name} read={self.read.capacity:g}B/s "
            f"write={self.write.capacity:g}B/s>"
        )
