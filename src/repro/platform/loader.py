"""JSON platform descriptions → Platform objects.

Format (all bandwidths bytes/s, flops flops/s, latencies seconds)::

    {
      "name": "demo-cluster",
      "nodes": {"count": 128, "flops": 1e12, "cores": 48},
      "network": {"topology": "star", "bandwidth": 12.5e9, "latency": 1e-6,
                  "pfs_bandwidth": 100e9},
      "pfs": {"read_bw": 100e9, "write_bw": 80e9},
      "burst_buffer": {"read_bw": 5e9, "write_bw": 2e9, "capacity": 1.5e12},
      "power": {"idle_watts": 100, "peak_watts": 350, "corridor_watts": 30e3}
    }

``network.topology`` ∈ {"star", "fat_tree", "torus", "dragonfly"}; the
non-star variants accept their builder's keyword arguments (e.g. ``arity``
for fat trees, ``dims`` for tori).  ``pfs``, ``burst_buffer`` and
``power`` are optional; ``power`` gives every node the same idle/peak
draw (watts) and may declare a system-wide ``corridor_watts`` cap for
corridor-aware schedulers (see :doc:`docs/HYBRID`).  Substitution note (see DESIGN.md): this replaces SimGrid XML
platform files with equal information content.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.platform.components import BurstBuffer, Node, Pfs, PlatformError
from repro.platform.platform import Platform
from repro.platform.topology import (
    StarTopology,
    Topology,
    build_dragonfly,
    build_fat_tree,
    build_torus,
)


def _require(mapping: Dict[str, Any], key: str, context: str) -> Any:
    if key not in mapping:
        raise PlatformError(f"Missing required key {key!r} in {context}")
    return mapping[key]


def _positive_number(value: Any, name: str) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise PlatformError(f"{name} must be a number, got {value!r}")
    if value <= 0:
        raise PlatformError(f"{name} must be > 0, got {value}")
    return float(value)


def _build_topology(spec: Dict[str, Any], num_nodes: int) -> Topology:
    kind = spec.get("topology", "star")
    bandwidth = _positive_number(_require(spec, "bandwidth", "network"), "network.bandwidth")
    latency = float(spec.get("latency", 0.0))
    if latency < 0:
        raise PlatformError(f"network.latency must be >= 0, got {latency}")
    pfs_bandwidth = spec.get("pfs_bandwidth")
    if pfs_bandwidth is not None:
        pfs_bandwidth = _positive_number(pfs_bandwidth, "network.pfs_bandwidth")

    if kind == "star":
        return StarTopology(num_nodes, bandwidth, latency, pfs_bandwidth)
    if kind == "fat_tree":
        return build_fat_tree(
            num_nodes,
            arity=int(spec.get("arity", 8)),
            leaf_bandwidth=bandwidth,
            spine_bandwidth=spec.get("spine_bandwidth"),
            latency=latency,
            pfs_bandwidth=pfs_bandwidth,
        )
    if kind == "torus":
        dims = tuple(_require(spec, "dims", "network (torus)"))
        expected = 1
        for d in dims:
            expected *= d
        if expected != num_nodes:
            raise PlatformError(
                f"torus dims {dims} give {expected} nodes, platform has {num_nodes}"
            )
        return build_torus(dims, bandwidth=bandwidth, latency=latency,
                           pfs_bandwidth=pfs_bandwidth)
    if kind == "dragonfly":
        groups = int(_require(spec, "groups", "network (dragonfly)"))
        routers = int(_require(spec, "routers_per_group", "network (dragonfly)"))
        per_router = int(_require(spec, "nodes_per_router", "network (dragonfly)"))
        if groups * routers * per_router != num_nodes:
            raise PlatformError(
                f"dragonfly shape {groups}x{routers}x{per_router} != {num_nodes} nodes"
            )
        return build_dragonfly(
            groups,
            routers,
            per_router,
            node_bandwidth=bandwidth,
            local_bandwidth=spec.get("local_bandwidth"),
            global_bandwidth=spec.get("global_bandwidth"),
            latency=latency,
            pfs_bandwidth=pfs_bandwidth,
        )
    raise PlatformError(
        f"Unknown topology {kind!r}; expected star/fat_tree/torus/dragonfly"
    )


def platform_from_dict(spec: Dict[str, Any]) -> Platform:
    """Build a :class:`Platform` from a parsed JSON description."""
    if not isinstance(spec, dict):
        raise PlatformError(f"Platform spec must be an object, got {type(spec).__name__}")
    name = spec.get("name", "cluster")

    node_spec = _require(spec, "nodes", "platform")
    count = node_spec.get("count")
    if not isinstance(count, int) or count < 1:
        raise PlatformError(f"nodes.count must be a positive integer, got {count!r}")
    flops = _positive_number(_require(node_spec, "flops", "nodes"), "nodes.flops")
    cores = int(node_spec.get("cores", 1))
    gpus = int(node_spec.get("gpus", 0))
    gpu_flops = float(node_spec.get("gpu_flops", 0.0))

    power_spec = spec.get("power")
    idle_watts = 0.0
    peak_watts = 0.0
    corridor = None
    if power_spec is not None:
        if not isinstance(power_spec, dict):
            raise PlatformError(
                f"power must be an object, got {type(power_spec).__name__}"
            )
        peak_watts = _positive_number(
            _require(power_spec, "peak_watts", "power"), "power.peak_watts"
        )
        idle_raw = power_spec.get("idle_watts", 0.0)
        if not isinstance(idle_raw, (int, float)) or isinstance(idle_raw, bool):
            raise PlatformError(f"power.idle_watts must be a number, got {idle_raw!r}")
        idle_watts = float(idle_raw)
        if not 0 <= idle_watts <= peak_watts:
            raise PlatformError(
                f"power.idle_watts must be in [0, peak_watts], got {idle_watts}"
            )
        if "corridor_watts" in power_spec:
            corridor = _positive_number(
                power_spec["corridor_watts"], "power.corridor_watts"
            )
        unknown = sorted(set(power_spec) - {"idle_watts", "peak_watts", "corridor_watts"})
        if unknown:
            raise PlatformError(f"power: unknown keys {unknown}")

    bb_spec = spec.get("burst_buffer")
    nodes = []
    for i in range(count):
        bb = None
        if bb_spec is not None:
            bb = BurstBuffer(
                f"node{i:04d}.bb",
                read_bw=_positive_number(
                    _require(bb_spec, "read_bw", "burst_buffer"), "burst_buffer.read_bw"
                ),
                write_bw=_positive_number(
                    _require(bb_spec, "write_bw", "burst_buffer"),
                    "burst_buffer.write_bw",
                ),
                capacity=_positive_number(
                    bb_spec.get("capacity", float("inf")), "burst_buffer.capacity"
                ),
            )
        nodes.append(
            Node(
                i,
                flops,
                cores=cores,
                gpus=gpus,
                gpu_flops=gpu_flops,
                bb=bb,
                idle_watts=idle_watts,
                peak_watts=peak_watts,
            )
        )

    network_spec = _require(spec, "network", "platform")
    topology = _build_topology(network_spec, count)

    pfs = None
    pfs_spec = spec.get("pfs")
    if pfs_spec is not None:
        pfs = Pfs(
            read_bw=_positive_number(
                _require(pfs_spec, "read_bw", "pfs"), "pfs.read_bw"
            ),
            write_bw=_positive_number(
                _require(pfs_spec, "write_bw", "pfs"), "pfs.write_bw"
            ),
            capacity=float(pfs_spec.get("capacity", float("inf"))),
        )

    return Platform(nodes, topology, pfs, name=name, power_corridor=corridor)


def load_platform(path: Union[str, Path]) -> Platform:
    """Load a platform description from a JSON file."""
    path = Path(path)
    try:
        spec = json.loads(path.read_text())
    except FileNotFoundError:
        raise PlatformError(f"Platform file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise PlatformError(f"Invalid JSON in {path}: {exc}") from exc
    return platform_from_dict(spec)
